package rollout

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// snapshotExt marks rollout state files in the snapshot directory.
const snapshotExt = ".rollout.json"

// stateDTO is one key's persisted lifecycle state: the artifacts plus
// the controller position. Evaluation reports are deliberately not
// persisted — they are per-stage evidence, and a restarted server
// should judge a stage only on reports gathered against its live
// artifact set.
type stateDTO struct {
	Key         string            `json:"key"`
	NextVersion int64             `json:"next_version"`
	StageIdx    int               `json:"stage_idx"`
	Rollbacks   int64             `json:"rollbacks"`
	Stable      int64             `json:"stable"`
	Candidate   int64             `json:"candidate,omitempty"`
	LastAction  string            `json:"last_action,omitempty"`
	Artifacts   []json.RawMessage `json:"artifacts"`
}

// safeKeyFile guards the key-to-filename mapping: keys come from
// validated app/platform names joined by "@", but Restore must hold
// the same line against foreign snapshot directories.
func safeKeyFile(key string) bool {
	if key == "" || len(key) > 260 || strings.Contains(key, "..") {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == '@':
		default:
			return false
		}
	}
	return true
}

// SnapshotKey persists one key's rollout state under
// dir/<key>.rollout.json with the same atomic temp-file + rename
// discipline as the table store, so a concurrent reader never sees a
// torn state file.
func (m *Manager) SnapshotKey(dir, key string) error {
	if !safeKeyFile(key) {
		return fmt.Errorf("rollout: unsafe snapshot key %q", key)
	}
	m.mu.RLock()
	e := m.keys[key]
	if e == nil {
		m.mu.RUnlock()
		return nil
	}
	dto := stateDTO{
		Key:         key,
		NextVersion: e.nextVersion,
		StageIdx:    e.stageIdx,
		Rollbacks:   e.rollbacks,
		LastAction:  e.lastAction,
	}
	if e.stable != nil {
		dto.Stable = e.stable.Version
	}
	if e.candidate != nil {
		dto.Candidate = e.candidate.Version
	}
	var err error
	dto.Artifacts = make([]json.RawMessage, len(e.artifacts))
	for i, a := range e.artifacts {
		dto.Artifacts[i], err = core.MarshalArtifact(a.ArtifactMeta, a.Set)
		if err != nil {
			break
		}
	}
	m.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("rollout: snapshotting %s: %w", key, err)
	}
	data, err := json.Marshal(dto)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".rollout.*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, key+snapshotExt)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Restore warm-starts the manager from a snapshot directory, returning
// how many keys were restored. Every artifact re-runs the hardened
// unmarshal (range-checked metadata, registry-validated tables,
// recomputed content hash), so a tampered or torn snapshot fails the
// restart instead of silently serving corrupt policy. A missing
// directory is a cold start, not an error.
func (m *Manager) Restore(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range entries {
		if f.IsDir() || !strings.HasSuffix(f.Name(), snapshotExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			return n, err
		}
		var dto stateDTO
		if err := json.Unmarshal(data, &dto); err != nil {
			return n, fmt.Errorf("rollout: restoring %s: %w", f.Name(), err)
		}
		if !safeKeyFile(dto.Key) || dto.Key+snapshotExt != f.Name() {
			return n, fmt.Errorf("rollout: restoring %s: embedded key %q does not match the file", f.Name(), dto.Key)
		}
		e := &keyState{
			reports:     make(map[string]EvalReport),
			nextVersion: dto.NextVersion,
			stageIdx:    dto.StageIdx,
			rollbacks:   dto.Rollbacks,
			lastAction:  dto.LastAction,
		}
		for _, raw := range dto.Artifacts {
			meta, set, err := core.UnmarshalArtifact(raw)
			if err != nil {
				return n, fmt.Errorf("rollout: restoring %s: %w", f.Name(), err)
			}
			a := &Artifact{ArtifactMeta: meta, Set: set}
			e.artifacts = append(e.artifacts, a)
			if meta.Version > e.nextVersion {
				e.nextVersion = meta.Version
			}
			if meta.Version == dto.Stable {
				e.stable = a
			}
			if dto.Candidate != 0 && meta.Version == dto.Candidate {
				e.candidate = a
			}
		}
		if e.stable == nil {
			return n, fmt.Errorf("rollout: restoring %s: stable version %d not among artifacts", f.Name(), dto.Stable)
		}
		if dto.Candidate != 0 && e.candidate == nil {
			return n, fmt.Errorf("rollout: restoring %s: candidate version %d not among artifacts", f.Name(), dto.Candidate)
		}
		if e.stageIdx < 0 || e.stageIdx >= len(m.cfg.Stages) {
			return n, fmt.Errorf("rollout: restoring %s: stage index %d out of range", f.Name(), e.stageIdx)
		}
		if err := validateArtifacts(e.artifacts); err != nil {
			return n, fmt.Errorf("rollout: restoring %s: %w", f.Name(), err)
		}
		m.mu.Lock()
		m.keys[dto.Key] = e
		m.mu.Unlock()
		n++
	}
	return n, nil
}

// validateArtifacts checks a restored history's internal consistency:
// ascending unique versions and one learner across the key (merges
// enforce this on the live path; a snapshot must not smuggle a mix
// past it).
func validateArtifacts(arts []*Artifact) error {
	var last int64
	name := ""
	for _, a := range arts {
		if a.Version <= last {
			return fmt.Errorf("artifact versions not strictly ascending at v%d", a.Version)
		}
		last = a.Version
		got := learner.Normalize(a.Set.Learner)
		if name == "" {
			name = got
		} else if got != name {
			return fmt.Errorf("artifact v%d from learner %q, history has %q", a.Version, got, name)
		}
	}
	return nil
}
