package rollout

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	m := testManager()
	const key = "spotify@note9"
	if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	registerFleet(m, 16)
	if _, err := m.Submit(key, testArtifact(t, 2.0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotKey(dir, key); err != nil {
		t.Fatalf("SnapshotKey: %v", err)
	}

	m2 := testManager()
	n, err := m2.Restore(dir)
	if err != nil || n != 1 {
		t.Fatalf("Restore = %d, %v; want 1 key", n, err)
	}
	before, _ := m.Status(key)
	after, ok := m2.Status(key)
	if !ok {
		t.Fatal("restored manager lost the key")
	}
	if after.Stable.Version != before.Stable.Version || after.Stable.Hash != before.Stable.Hash {
		t.Fatalf("stable drifted across restart: %+v vs %+v", after.Stable, before.Stable)
	}
	if after.Candidate == nil || after.Candidate.Version != 2 {
		t.Fatalf("candidate lost across restart: %+v", after.Candidate)
	}
	// A device's cohort is stable across the restart (devices re-register
	// via check-ins; until then the floor is empty and the raw stage
	// threshold applies, which canaries nobody — resolve must still work).
	if art, _, ok := m2.Resolve(key, ""); !ok || art.Version != 1 {
		t.Fatalf("legacy resolve after restore = v%d, want v1", art.Version)
	}
	registerFleet(m2, 16)
	if art, cohort, _ := m2.Resolve(key, "dev-00000011"); cohort != CohortCanary || art.Version != 2 {
		t.Fatalf("dev-00000011 after restore = v%d %q, want v2 canary", art.Version, cohort)
	}

	// Version numbering continues past the restart.
	v3, err := m2.Submit(key, testArtifact(t, 3.0, 3))
	if err != nil || v3.Version != 3 {
		t.Fatalf("post-restore submit = v%d, %v; want v3", v3.Version, err)
	}
}

func TestRestoreRejectsTamper(t *testing.T) {
	dir := t.TempDir()
	m := testManager()
	const key = "spotify@note9"
	if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotKey(dir, key); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+snapshotExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one table value inside the artifact payload: the recomputed
	// content hash must catch it.
	tampered := strings.Replace(string(data), `"1":[1,2,3]`, `"1":[9,2,3]`, 1)
	if tampered == string(data) {
		t.Fatalf("tamper target not found in snapshot: %s", data)
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := testManager().Restore(dir); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("Restore of tampered snapshot = %v, want content-hash error", err)
	}
}

func TestRestoreRejectsForeignKey(t *testing.T) {
	dir := t.TempDir()
	m := testManager()
	const key = "spotify@note9"
	if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotKey(dir, key); err != nil {
		t.Fatal(err)
	}
	// Rename the file so the embedded key no longer matches.
	if err := os.Rename(filepath.Join(dir, key+snapshotExt), filepath.Join(dir, "other@note9"+snapshotExt)); err != nil {
		t.Fatal(err)
	}
	if _, err := testManager().Restore(dir); err == nil {
		t.Fatal("Restore accepted a snapshot whose embedded key mismatches its filename")
	}
	if err := m.SnapshotKey(dir, "../escape"); err == nil {
		t.Fatal("SnapshotKey accepted a path-escaping key")
	}
}
