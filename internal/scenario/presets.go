package scenario

import (
	"fmt"
	"sort"

	"nextdvfs/internal/workload"
)

// The preset library: the usage days the ROADMAP's "as many scenarios
// as you can imagine" opens with. Each is a plain Scenario value —
// callers can take one as a starting point, edit phases and Compile
// their own variants.

func commute() Scenario {
	return Scenario{
		Name:        "commute",
		Description: "music in the pocket, bursts of feed and browser on the bus; outdoor→vehicle ambient",
		AmbientC:    27,
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 10},
			{App: workload.NameSpotify, Seconds: 75},
			{App: workload.NameSpotify, Seconds: 300, Mode: ModeScreenOff},
			{App: workload.NameFacebook, Seconds: 120, AmbientC: 24},
			{App: workload.NameSpotify, Seconds: 240, Mode: ModeScreenOff},
			{App: workload.NameChrome, Seconds: 90},
			{App: workload.NameSpotify, Seconds: 180, Mode: ModeScreenOff},
			{App: workload.NameHome, Seconds: 15},
		},
	}
}

func gamingMarathon() Scenario {
	return Scenario{
		Name:        "gaming-marathon",
		Description: "long Lineage and PubG stretches with a social break; the sustained-thermal stress case",
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 15},
			{App: workload.NameLineage, Seconds: 600},
			{App: workload.NameLineage, Seconds: 300, Mode: ModeFixed, Inter: workload.InterPlay},
			{App: workload.NameFacebook, Seconds: 90},
			{App: workload.NamePubG, Seconds: 540},
			{App: workload.NameLineage, Seconds: 240, Mode: ModeFixed, Inter: workload.InterPlay},
		},
	}
}

func doomscroll() Scenario {
	return Scenario{
		Name:        "doomscroll",
		Description: "late-night feed scrolling on a fast panel, short video detours, screen-off lapses",
		AmbientC:    22,
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 10},
			{App: workload.NameFacebook, Seconds: 240, Mode: ModeFixed, Inter: workload.InterScroll, RefreshHz: 120},
			{App: workload.NameFacebook, Seconds: 300},
			{App: workload.NameYouTube, Seconds: 180, RefreshHz: 60},
			{App: workload.NameFacebook, Seconds: 180, Mode: ModeFixed, Inter: workload.InterScroll, RefreshHz: 120},
			{App: workload.NameFacebook, Seconds: 120, Mode: ModeScreenOff},
			{App: workload.NameFacebook, Seconds: 180},
		},
	}
}

func videoBinge() Scenario {
	return Scenario{
		Name:        "video-binge",
		Description: "back-to-back streaming with seek bursts and a screen-off pause; the decode-pipeline soak",
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 10},
			{App: workload.NameYouTube, Seconds: 840, Mode: ModeFixed, Inter: workload.InterWatch},
			{App: workload.NameYouTube, Seconds: 120},
			{App: workload.NameYouTube, Seconds: 120, Mode: ModeScreenOff},
			{App: workload.NameYouTube, Seconds: 840, Mode: ModeFixed, Inter: workload.InterWatch},
		},
	}
}

func burstyMessaging() Scenario {
	s := Scenario{
		Name:        "bursty-messaging",
		Description: "the 70%-under-2-minutes pickup pattern: short feed bursts between pocketed stretches",
	}
	for i := 0; i < 6; i++ {
		burst := workload.NameFacebook
		if i%3 == 2 {
			burst = workload.NameChrome
		}
		s.Phases = append(s.Phases,
			Phase{App: workload.NameHome, Seconds: 8},
			Phase{App: burst, Seconds: 50},
			Phase{App: workload.NameHome, Seconds: 100, Mode: ModeScreenOff},
		)
	}
	return s
}

func thermalSoak() Scenario {
	return Scenario{
		Name:        "thermal-soak",
		Description: "PubG in a 35 °C car, then air conditioning kicks in; stresses thermal headroom policies",
		AmbientC:    35,
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 10},
			{App: workload.NamePubG, Seconds: 480},
			{App: workload.NamePubG, Seconds: 300, Mode: ModeFixed, Inter: workload.InterPlay},
			{App: workload.NamePubG, Seconds: 180, Mode: ModeScreenOff, AmbientC: 30},
			{App: workload.NamePubG, Seconds: 240},
		},
	}
}

func coldStart() Scenario {
	return Scenario{
		Name:        "cold-start",
		Description: "a 5 °C winter morning moving indoors: browsing and music with huge thermal headroom",
		AmbientC:    5,
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 15},
			{App: workload.NameChrome, Seconds: 180},
			{App: workload.NameSpotify, Seconds: 90},
			{App: workload.NameSpotify, Seconds: 240, Mode: ModeScreenOff},
			{App: workload.NameFacebook, Seconds: 120, AmbientC: 21},
			{App: workload.NameChrome, Seconds: 120},
		},
	}
}

func mixedDay() Scenario {
	return Scenario{
		Name:        "mixed-day",
		Description: "morning→noon→evening rotation over six apps with ambient drift; the broadest single scenario",
		AmbientC:    18,
		Phases: []Phase{
			{App: workload.NameHome, Seconds: 15},
			{App: workload.NameFacebook, Seconds: 180},
			{App: workload.NameSpotify, Seconds: 300, Mode: ModeScreenOff},
			{App: workload.NameChrome, Seconds: 180, AmbientC: 26},
			{App: workload.NameYouTube, Seconds: 300, Mode: ModeFixed, Inter: workload.InterWatch},
			{App: workload.NameLineage, Seconds: 420},
			{App: workload.NameFacebook, Seconds: 240, Mode: ModeFixed, Inter: workload.InterScroll, AmbientC: 21, RefreshHz: 90},
			{App: workload.NameSpotify, Seconds: 480, Mode: ModeScreenOff},
			{App: workload.NameHome, Seconds: 20},
		},
	}
}

// presets maps name → factory. Factories (not values) so every caller
// gets an independent Scenario it may mutate freely.
var presets = map[string]func() Scenario{
	"commute":          commute,
	"gaming-marathon":  gamingMarathon,
	"doomscroll":       doomscroll,
	"video-binge":      videoBinge,
	"bursty-messaging": burstyMessaging,
	"thermal-soak":     thermalSoak,
	"cold-start":       coldStart,
	"mixed-day":        mixedDay,
}

// Names returns the preset scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the named preset scenario. The error lists the library so
// CLI users see their options.
func Get(name string) (Scenario, error) {
	mk, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have: %v)", name, Names())
	}
	return mk(), nil
}

// MustGet is Get for wiring code where the name is a compile-time
// constant; it panics on unknown names.
func MustGet(name string) Scenario {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}
