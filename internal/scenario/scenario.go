// Package scenario is the composable user-interaction scenario engine:
// it turns a declarative description of a usage session — timed phases
// of apps, interaction modes, screen state, panel refresh and ambient
// temperature — into the concrete artifacts the simulator consumes (a
// session.Timeline plus thermal/display environment schedules).
//
// Scenarios are the axis the paper's fixed Fig. 6–8 replay sequences
// leave closed: the same policy can now be trained and evaluated on a
// commute, a gaming marathon, a doomscrolling night or a hot-car
// thermal soak (see the preset library in presets.go). Compilation is
// deterministic and seedable — the same (scenario, seed) pair always
// yields byte-identical timelines and schedules, so scenario grids
// inherit the repo-wide invariant that -parallel 1 and -parallel 8
// produce byte-identical results.
package scenario

import (
	"fmt"
	"math/rand"

	"nextdvfs/internal/display"
	"nextdvfs/internal/session"
	"nextdvfs/internal/thermal"
	"nextdvfs/internal/workload"
)

// Phase is one timed segment of a scenario: an app held for a duration
// under a chosen engagement mode, with optional environment changes
// taking effect at the phase boundary.
type Phase struct {
	// App is the preset application name (see workload.ByName).
	App string
	// Seconds is the phase duration (> 0).
	Seconds float64
	// Mode selects the engagement during the phase.
	Mode Mode
	// Inter is the fixed interaction when Mode == ModeFixed.
	Inter workload.Interaction
	// AmbientC, when non-zero, moves the environment to this ambient at
	// the phase start; it persists until a later phase overrides it.
	AmbientC float64
	// RefreshHz, when non-zero, switches the panel to this rate at the
	// phase start; it persists until a later phase overrides it.
	RefreshHz int
}

// Mode is how the user engages with the app during a phase.
type Mode int

const (
	// ModeAuto draws a class-appropriate interaction script for the app
	// (the session generators behind the paper's replay sequences).
	ModeAuto Mode = iota
	// ModeFixed holds one interaction for the whole phase.
	ModeFixed
	// ModeScreenOff turns the screen off: the app stays resident (audio
	// keeps playing, sync keeps running) but produces no frames and the
	// device sheds the display's share of base power.
	ModeScreenOff
)

// Scenario is a named, composable usage session.
type Scenario struct {
	Name        string
	Description string
	// AmbientC, when non-zero, is the ambient the scenario starts in
	// (phases may move it); zero inherits the platform's ambient.
	AmbientC float64
	Phases   []Phase
}

// DurS returns the scenario's total duration in seconds.
func (s Scenario) DurS() float64 {
	var d float64
	for _, p := range s.Phases {
		d += p.Seconds
	}
	return d
}

// Apps returns the distinct preset apps the scenario visits, in order
// of first appearance.
func (s Scenario) Apps() []string {
	seen := make(map[string]bool, len(s.Phases))
	var apps []string
	for _, p := range s.Phases {
		if !seen[p.App] {
			seen[p.App] = true
			apps = append(apps, p.App)
		}
	}
	return apps
}

// Validate reports the first inconsistency, or nil.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", s.Name)
	}
	for i, p := range s.Phases {
		switch {
		case workload.ByName(p.App) == nil:
			return fmt.Errorf("scenario %q phase %d: unknown app %q", s.Name, i, p.App)
		case p.Seconds <= 0:
			return fmt.Errorf("scenario %q phase %d (%s): duration %v s", s.Name, i, p.App, p.Seconds)
		case p.Mode < ModeAuto || p.Mode > ModeScreenOff:
			return fmt.Errorf("scenario %q phase %d (%s): bad mode %d", s.Name, i, p.App, int(p.Mode))
		case p.RefreshHz < 0:
			return fmt.Errorf("scenario %q phase %d (%s): refresh %d Hz", s.Name, i, p.App, p.RefreshHz)
		}
	}
	return nil
}

// Scaled returns a copy of the scenario with every phase duration
// multiplied by factor — how tests, smoke runs and quick looks shrink a
// 40-minute scenario to seconds while keeping its shape. The copy keeps
// the scenario's name; callers that must distinguish scaled results
// report the factor alongside it (as Result.DurationS always shows).
func Scaled(s Scenario, factor float64) Scenario {
	if factor <= 0 || factor == 1 {
		return s
	}
	v := s
	v.Phases = append([]Phase(nil), s.Phases...)
	for i := range v.Phases {
		v.Phases[i].Seconds *= factor
	}
	return v
}

// Compiled is a scenario lowered to the simulator's inputs.
type Compiled struct {
	Scenario Scenario
	// Timeline is the app/interaction schedule for sim.Config.Timeline.
	Timeline *session.Timeline
	// Ambient drives thermal ambient over the run; nil when the scenario
	// never departs from the base ambient.
	Ambient *thermal.AmbientSchedule
	// Refresh drives the panel rate; nil when no phase switches it.
	Refresh *display.RefreshSchedule
}

// Compile lowers a scenario into a timeline and environment schedules.
// baseAmbientC is the platform's ambient, used until (unless) the
// scenario overrides it. All stochastic interaction drawing flows from
// seed; equal (scenario, seed, baseAmbientC) triples compile to
// byte-identical artifacts.
func Compile(s Scenario, seed int64, baseAmbientC float64) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Compiled{Scenario: s, Timeline: &session.Timeline{}}

	ambient := baseAmbientC
	if s.AmbientC != 0 {
		ambient = s.AmbientC
	}
	ambientSteps := []thermal.AmbientStep{{AtUS: 0, AmbientC: ambient}}
	ambientMoves := ambient != baseAmbientC
	var refreshSteps []display.RefreshStep

	var nowUS int64
	for _, p := range s.Phases {
		durUS := session.Seconds(p.Seconds)
		if durUS <= 0 {
			// Sub-microsecond phases can appear under aggressive Scaled
			// factors; clamp so the timeline stays valid.
			durUS = 1
		}
		var phases []session.Phase
		switch p.Mode {
		case ModeScreenOff:
			phases = []session.Phase{{Inter: workload.InterOff, DurUS: durUS}}
		case ModeFixed:
			phases = []session.Phase{{Inter: p.Inter, DurUS: durUS}}
		default:
			phases = session.ForApp(workload.ByName(p.App), durUS, rng).Phases
		}
		// Consecutive phases of the same app extend one Script: the app
		// stays resident across e.g. active → screen-off → active, so the
		// engine must not fire its app-switch path (app Reset, in-flight
		// frame drop, Controller.AppChanged) at those boundaries.
		if n := len(c.Timeline.Scripts); n > 0 && c.Timeline.Scripts[n-1].App.Name() == p.App {
			c.Timeline.Scripts[n-1].Phases = append(c.Timeline.Scripts[n-1].Phases, phases...)
		} else {
			c.Timeline.Scripts = append(c.Timeline.Scripts, session.Script{App: workload.ByName(p.App), Phases: phases})
		}

		if p.AmbientC != 0 && p.AmbientC != ambient {
			ambient = p.AmbientC
			ambientMoves = true
			if nowUS == 0 {
				ambientSteps[0].AmbientC = ambient
			} else {
				ambientSteps = append(ambientSteps, thermal.AmbientStep{AtUS: nowUS, AmbientC: ambient})
			}
		}
		if p.RefreshHz > 0 {
			n := len(refreshSteps)
			if n == 0 || refreshSteps[n-1].RefreshHz != p.RefreshHz {
				refreshSteps = append(refreshSteps, display.RefreshStep{AtUS: nowUS, RefreshHz: p.RefreshHz})
			}
		}
		nowUS += durUS
	}

	if ambientMoves {
		sched, err := thermal.NewAmbientSchedule(ambientSteps)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		c.Ambient = sched
	}
	if len(refreshSteps) > 0 {
		sched, err := display.NewRefreshSchedule(refreshSteps)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		c.Refresh = sched
	}
	return c, nil
}
