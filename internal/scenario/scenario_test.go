package scenario

import (
	"reflect"
	"testing"

	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

func TestPresetsValidateAndCompile(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("preset library has %d scenarios, want ≥ 8", len(names))
	}
	for _, name := range names {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("preset %q carries name %q", name, s.Name)
		}
		if s.Description == "" {
			t.Fatalf("preset %q has no description", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		c, err := Compile(s, 42, 21)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Timeline.Validate(); err != nil {
			t.Fatalf("%s: compiled timeline invalid: %v", name, err)
		}
		var wantUS int64
		for _, p := range s.Phases {
			wantUS += session.Seconds(p.Seconds)
		}
		if got := c.Timeline.DurUS(); got != wantUS {
			t.Fatalf("%s: timeline %d µs, scenario %d µs", name, got, wantUS)
		}
		// Consecutive same-app phases coalesce into one script, so the
		// engine never sees an app switch where the app stayed resident.
		runs := 1
		for i := 1; i < len(s.Phases); i++ {
			if s.Phases[i].App != s.Phases[i-1].App {
				runs++
			}
		}
		if len(c.Timeline.Scripts) != runs {
			t.Fatalf("%s: %d scripts for %d app runs", name, len(c.Timeline.Scripts), runs)
		}
		for i := 1; i < len(c.Timeline.Scripts); i++ {
			if c.Timeline.Scripts[i].App.Name() == c.Timeline.Scripts[i-1].App.Name() {
				t.Fatalf("%s: scripts %d and %d share app %s — not coalesced", name, i-1, i, c.Timeline.Scripts[i].App.Name())
			}
		}
		if len(s.Apps()) == 0 {
			t.Fatalf("%s: no apps", name)
		}
	}
}

func TestCompileDeterministicPerSeed(t *testing.T) {
	for _, name := range Names() {
		s := MustGet(name)
		a, err := Compile(s, 7, 21)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(s, 7, 21)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Timeline, b.Timeline) {
			t.Fatalf("%s: same seed compiled different timelines", name)
		}
	}
	// A scenario with stochastic phases must differ across seeds.
	s := MustGet("commute")
	a, _ := Compile(s, 7, 21)
	b, _ := Compile(s, 8, 21)
	if reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("different seeds compiled identical commute timelines")
	}
}

func TestCompileEnvironmentSchedules(t *testing.T) {
	// commute opens at 27 °C and drops to 24 °C when the bus phase
	// starts (10 + 75 + 300 seconds in).
	c, err := Compile(MustGet("commute"), 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ambient == nil {
		t.Fatal("commute should carry an ambient schedule")
	}
	c.Ambient.Start()
	if got := c.Ambient.At(0); got != 27 {
		t.Fatalf("commute opens at %v °C, want 27", got)
	}
	busUS := session.Seconds(10 + 75 + 300)
	if got := c.Ambient.At(busUS); got != 24 {
		t.Fatalf("commute bus phase at %v °C, want 24", got)
	}
	if c.Refresh != nil {
		t.Fatal("commute should not switch the panel")
	}

	// doomscroll switches 120 → 60 → 120 Hz at phase starts.
	d, err := Compile(MustGet("doomscroll"), 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if d.Refresh == nil {
		t.Fatal("doomscroll should carry a refresh schedule")
	}
	steps := d.Refresh.Steps()
	if len(steps) != 3 || steps[0].RefreshHz != 120 || steps[1].RefreshHz != 60 || steps[2].RefreshHz != 120 {
		t.Fatalf("doomscroll refresh steps = %+v", steps)
	}

	// A scenario that never leaves the platform ambient compiles without
	// an ambient schedule at all.
	g, err := Compile(MustGet("gaming-marathon"), 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if g.Ambient != nil {
		t.Fatal("ambient-free scenario should compile a nil schedule")
	}

	// Scenario base ambient equal to the platform's is also schedule-free.
	s := Scenario{Name: "x", AmbientC: 21, Phases: []Phase{{App: workload.NameHome, Seconds: 5}}}
	x, err := Compile(s, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if x.Ambient != nil {
		t.Fatal("matching base ambient should compile a nil schedule")
	}
}

func TestScreenOffPhasesCompileToInterOff(t *testing.T) {
	c, err := Compile(MustGet("commute"), 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, script := range c.Timeline.Scripts {
		for _, p := range script.Phases {
			if p.Inter == workload.InterOff {
				off++
			}
		}
	}
	if off != 3 {
		t.Fatalf("commute compiled %d screen-off phases, want 3", off)
	}
}

func TestScaled(t *testing.T) {
	s := MustGet("mixed-day")
	half := Scaled(s, 0.5)
	if got, want := half.DurS(), s.DurS()/2; got != want {
		t.Fatalf("scaled duration %v, want %v", got, want)
	}
	if s.Phases[1].Seconds == half.Phases[1].Seconds {
		t.Fatal("Scaled mutated nothing")
	}
	if Scaled(s, 1).DurS() != s.DurS() || Scaled(s, 0).DurS() != s.DurS() {
		t.Fatal("factor 1/0 should be identity")
	}
	// Aggressively scaled scenarios still compile to valid timelines.
	tiny := Scaled(s, 0.01)
	c, err := Compile(tiny, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Timeline.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Scenario{
		{Name: "", Phases: []Phase{{App: workload.NameHome, Seconds: 1}}},
		{Name: "x"},
		{Name: "x", Phases: []Phase{{App: "nosuchapp", Seconds: 1}}},
		{Name: "x", Phases: []Phase{{App: workload.NameHome, Seconds: 0}}},
		{Name: "x", Phases: []Phase{{App: workload.NameHome, Seconds: 1, Mode: Mode(99)}}},
		{Name: "x", Phases: []Phase{{App: workload.NameHome, Seconds: 1, RefreshHz: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
		if _, err := Compile(s, 1, 21); err == nil {
			t.Fatalf("case %d should fail compilation", i)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}
