// Package session generates user-interaction timelines: who is using
// which app, doing what, for how long. The paper grounds its evaluation
// in market research (Deloitte / RescueTime): a user picks up the phone
// ~52 times per workday, 70 % of sessions are under 2 minutes, 25 % last
// 2–10 minutes and 5 % exceed 10 minutes — sessions are stochastic in
// nature, which is precisely why static DVFS policies waste power.
//
// A Timeline is a sequence of per-app Scripts; a Script is a sequence of
// interaction Phases (loading, scroll, touch, idle, watch, play). Phase
// synthesis is class-specific: browsers alternate page-load bursts with
// scroll-and-read cycles, music apps idle for long stretches while
// audio plays, games render continuously between menu pauses. All
// randomness flows from a caller-supplied *rand.Rand, so every timeline
// is reproducible from its seed.
package session
