package session

import (
	"math/rand"

	"nextdvfs/internal/workload"
)

// durRange draws a uniform duration in [lo, hi] seconds.
func durRange(rng *rand.Rand, lo, hi float64) int64 {
	return Seconds(lo + (hi-lo)*rng.Float64())
}

// ForApp synthesizes a class-appropriate interaction script of
// approximately durUS for the app. The last phase is truncated so the
// script's total duration is exactly durUS.
func ForApp(app workload.App, durUS int64, rng *rand.Rand) Script {
	var phases []Phase
	switch app.Class() {
	case workload.ClassGame:
		phases = gamePhases(durUS, rng)
	case workload.ClassMusic:
		phases = musicPhases(durUS, rng)
	case workload.ClassVideo:
		phases = videoPhases(durUS, rng)
	case workload.ClassBrowser:
		phases = browserPhases(durUS, rng)
	case workload.ClassLauncher:
		phases = launcherPhases(durUS, rng)
	default: // social
		phases = socialPhases(durUS, rng)
	}
	return Script{App: app, Phases: truncate(phases, durUS)}
}

func truncate(phases []Phase, durUS int64) []Phase {
	var out []Phase
	var acc int64
	for _, p := range phases {
		if acc+p.DurUS >= durUS {
			if rem := durUS - acc; rem > 0 {
				out = append(out, Phase{Inter: p.Inter, DurUS: rem})
			}
			return out
		}
		out = append(out, p)
		acc += p.DurUS
	}
	// Script came up short (generator loops should prevent this); pad
	// with idle so the caller always gets the requested duration.
	if rem := durUS - acc; rem > 0 {
		out = append(out, Phase{Inter: workload.InterIdle, DurUS: rem})
	}
	return out
}

// socialPhases: load, then scroll/read/touch cycles — the Facebook
// pattern of Fig. 1 (FPS bursts at 40-60 between near-zero stretches).
func socialPhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{{workload.InterLoading, durRange(rng, 1.8, 3.0)}}
	var acc = ph[0].DurUS
	for acc < durUS {
		cycle := []Phase{
			{workload.InterScroll, durRange(rng, 1.5, 4.5)},
			{workload.InterIdle, durRange(rng, 2.0, 8.0)},
		}
		if rng.Float64() < 0.35 {
			cycle = append(cycle, Phase{workload.InterTouch, durRange(rng, 0.2, 0.5)})
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// musicPhases: load, pick a track (touches), then long idle stretches
// with the screen static while audio plays — the Spotify waste case.
func musicPhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{
		{workload.InterLoading, durRange(rng, 1.5, 2.5)},
		{workload.InterScroll, durRange(rng, 0.8, 2.0)},
		{workload.InterTouch, durRange(rng, 0.3, 0.6)},
	}
	var acc int64
	for _, p := range ph {
		acc += p.DurUS
	}
	for acc < durUS {
		cycle := []Phase{{workload.InterIdle, durRange(rng, 15, 45)}}
		if rng.Float64() < 0.5 {
			cycle = append(cycle, Phase{workload.InterTouch, durRange(rng, 0.2, 0.4)})
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// videoPhases: load, start playback, then long watch stretches with the
// occasional seek.
func videoPhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{
		{workload.InterLoading, durRange(rng, 1.5, 2.5)},
		{workload.InterTouch, durRange(rng, 0.3, 0.8)},
	}
	var acc int64
	for _, p := range ph {
		acc += p.DurUS
	}
	for acc < durUS {
		cycle := []Phase{{workload.InterWatch, durRange(rng, 25, 90)}}
		if rng.Float64() < 0.3 {
			cycle = append(cycle, Phase{workload.InterTouch, durRange(rng, 0.2, 0.5)})
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// browserPhases: navigate (touch) → page load burst → scroll → read.
func browserPhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{{workload.InterLoading, durRange(rng, 1.0, 2.0)}}
	var acc = ph[0].DurUS
	for acc < durUS {
		cycle := []Phase{
			{workload.InterTouch, durRange(rng, 0.2, 0.5)},
			{workload.InterLoading, durRange(rng, 0.8, 2.5)},
			{workload.InterScroll, durRange(rng, 1.5, 3.5)},
			{workload.InterIdle, durRange(rng, 3.0, 10.0)},
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// gamePhases: a long level-load splash (mobile titles take tens of
// seconds to reach the lobby — the Section II scenario where FPS ≈ 0
// while CPUs are pegged), then play interleaved with menu pauses and
// mid-session loads (match/level transitions).
func gamePhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{{workload.InterLoading, durRange(rng, 12, 20)}}
	var acc = ph[0].DurUS
	for acc < durUS {
		cycle := []Phase{{workload.InterPlay, durRange(rng, 40, 80)}}
		switch r := rng.Float64(); {
		case r < 0.35:
			cycle = append(cycle, Phase{workload.InterLoading, durRange(rng, 4.0, 8.0)})
		case r < 0.65:
			cycle = append(cycle, Phase{workload.InterIdle, durRange(rng, 2.0, 5.0)})
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// launcherPhases: brief swipes and glances.
func launcherPhases(durUS int64, rng *rand.Rand) []Phase {
	ph := []Phase{{workload.InterIdle, durRange(rng, 0.5, 1.0)}}
	var acc = ph[0].DurUS
	for acc < durUS {
		cycle := []Phase{
			{workload.InterScroll, durRange(rng, 0.5, 1.5)},
			{workload.InterIdle, durRange(rng, 1.0, 4.0)},
			{workload.InterTouch, durRange(rng, 0.2, 0.4)},
		}
		for _, p := range cycle {
			ph = append(ph, p)
			acc += p.DurUS
		}
	}
	return ph
}

// PickupDuration draws a session length following the usage statistics
// the paper cites: 70 % of pickups last under 2 minutes, 25 % last 2–10
// minutes, 5 % exceed 10 minutes (capped at 20 for tractability).
func PickupDuration(rng *rand.Rand) int64 {
	switch r := rng.Float64(); {
	case r < 0.70:
		return durRange(rng, 20, 120)
	case r < 0.95:
		return durRange(rng, 120, 600)
	default:
		return durRange(rng, 600, 1200)
	}
}

// Pickup synthesizes one stochastic pickup session: a home-screen glance
// followed by one of the supplied apps for a pickup-distributed
// duration.
func Pickup(apps []workload.App, rng *rand.Rand) *Timeline {
	if len(apps) == 0 {
		panic("session: Pickup needs at least one app")
	}
	app := apps[rng.Intn(len(apps))]
	home := ForApp(wrapHome(), durRange(rng, 3, 8), rng)
	main := ForApp(app, PickupDuration(rng), rng)
	return &Timeline{Scripts: []Script{home, main}}
}

// wrapHome builds a fresh home-screen app for pickup prologues.
func wrapHome() workload.App { return workload.Home() }

// Fig1Timeline reproduces the paper's Fig. 1 / Fig. 3 session: home
// screen, then Facebook, then Spotify, ~280 s total on one seed-driven
// interaction pattern.
func Fig1Timeline(rng *rand.Rand) *Timeline {
	return &Timeline{Scripts: []Script{
		ForApp(workload.Home(), Seconds(70), rng),
		ForApp(workload.Facebook(), Seconds(110), rng),
		ForApp(workload.Spotify(), Seconds(100), rng),
	}}
}

// EvalTimeline builds the per-app evaluation session used for Fig. 7 /
// Fig. 8: games run 5 minutes, other apps 1.5–3 minutes, per the paper's
// experimental setup.
func EvalTimeline(app workload.App, rng *rand.Rand) *Timeline {
	var dur int64
	if app.Class() == workload.ClassGame {
		dur = Seconds(300)
	} else {
		dur = durRange(rng, 90, 180)
	}
	return &Timeline{Scripts: []Script{ForApp(app, dur, rng)}}
}
