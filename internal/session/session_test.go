package session

import (
	"math/rand"
	"testing"

	"nextdvfs/internal/workload"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestForAppExactDuration(t *testing.T) {
	apps := []workload.App{
		workload.Home(), workload.Facebook(), workload.Spotify(),
		workload.Chrome(), workload.Lineage(), workload.PubG(), workload.YouTube(),
	}
	for _, app := range apps {
		for _, durS := range []float64{10, 90, 300} {
			s := ForApp(app, Seconds(durS), rng(7))
			if err := s.Validate(); err != nil {
				t.Fatalf("%s: invalid script: %v", app.Name(), err)
			}
			if got := s.DurUS(); got != Seconds(durS) {
				t.Errorf("%s %gs: duration = %d µs, want %d", app.Name(), durS, got, Seconds(durS))
			}
		}
	}
}

func TestScriptsStartWithExpectedOpening(t *testing.T) {
	// All non-launcher apps open with a loading splash.
	for _, app := range []workload.App{workload.Facebook(), workload.Lineage(), workload.YouTube(), workload.Chrome(), workload.Spotify()} {
		s := ForApp(app, Seconds(60), rng(11))
		if s.Phases[0].Inter != workload.InterLoading {
			t.Errorf("%s should open with loading, got %v", app.Name(), s.Phases[0].Inter)
		}
	}
}

func TestGameScriptsMostlyPlay(t *testing.T) {
	s := ForApp(workload.Lineage(), Seconds(300), rng(13))
	var play, total int64
	for _, p := range s.Phases {
		total += p.DurUS
		if p.Inter == workload.InterPlay {
			play += p.DurUS
		}
	}
	if frac := float64(play) / float64(total); frac < 0.6 {
		t.Fatalf("game session play fraction = %.2f, want >0.6", frac)
	}
}

func TestMusicScriptsMostlyIdle(t *testing.T) {
	s := ForApp(workload.Spotify(), Seconds(180), rng(17))
	var idle, total int64
	for _, p := range s.Phases {
		total += p.DurUS
		if p.Inter == workload.InterIdle {
			idle += p.DurUS
		}
	}
	if frac := float64(idle) / float64(total); frac < 0.6 {
		t.Fatalf("music session idle fraction = %.2f, want >0.6 (screen static while audio plays)", frac)
	}
}

func TestCursorWalksWholeTimeline(t *testing.T) {
	tl := Fig1Timeline(rng(19))
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(tl)
	var lastApp workload.App
	enters := 0
	for now := int64(0); now < tl.DurUS(); now += 1000 {
		app, _, entered, ok := cur.At(now)
		if !ok {
			t.Fatalf("cursor ended early at %d µs (timeline %d µs)", now, tl.DurUS())
		}
		if entered {
			enters++
			if app == lastApp {
				t.Fatal("appEntered fired twice for the same script")
			}
			lastApp = app
		}
	}
	if enters != 3 {
		t.Fatalf("script entries = %d, want 3 (home, facebook, spotify)", enters)
	}
	if _, _, _, ok := cur.At(tl.DurUS() + 1); ok {
		t.Fatal("cursor should report exhaustion past the end")
	}
}

func TestFig1TimelineShape(t *testing.T) {
	tl := Fig1Timeline(rng(23))
	if len(tl.Scripts) != 3 {
		t.Fatalf("scripts = %d, want 3", len(tl.Scripts))
	}
	wantApps := []string{workload.NameHome, workload.NameFacebook, workload.NameSpotify}
	wantDur := []int64{Seconds(70), Seconds(110), Seconds(100)}
	for i, s := range tl.Scripts {
		if s.App.Name() != wantApps[i] {
			t.Errorf("script %d app = %s, want %s", i, s.App.Name(), wantApps[i])
		}
		if s.DurUS() != wantDur[i] {
			t.Errorf("script %d dur = %d, want %d", i, s.DurUS(), wantDur[i])
		}
	}
	if got := tl.DurUS(); got != Seconds(280) {
		t.Fatalf("total = %d µs, want 280 s", got)
	}
}

func TestPickupDurationDistribution(t *testing.T) {
	r := rng(29)
	var short, mid, long int
	const n = 20000
	for i := 0; i < n; i++ {
		d := PickupDuration(r)
		switch {
		case d < Seconds(120):
			short++
		case d < Seconds(600):
			mid++
		default:
			long++
		}
	}
	// Expect ≈70/25/5 within generous tolerance.
	if f := float64(short) / n; f < 0.65 || f > 0.75 {
		t.Errorf("short fraction = %.3f, want ≈0.70", f)
	}
	if f := float64(mid) / n; f < 0.20 || f > 0.30 {
		t.Errorf("mid fraction = %.3f, want ≈0.25", f)
	}
	if f := float64(long) / n; f < 0.02 || f > 0.08 {
		t.Errorf("long fraction = %.3f, want ≈0.05", f)
	}
}

func TestPickupTimeline(t *testing.T) {
	apps := []workload.App{workload.Facebook(), workload.YouTube()}
	tl := Pickup(apps, rng(31))
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Scripts) != 2 {
		t.Fatalf("pickup scripts = %d, want 2 (home + app)", len(tl.Scripts))
	}
	if tl.Scripts[0].App.Name() != workload.NameHome {
		t.Fatal("pickup should start on the home screen")
	}
}

func TestEvalTimelineDurations(t *testing.T) {
	game := EvalTimeline(workload.PubG(), rng(37))
	if game.DurUS() != Seconds(300) {
		t.Fatalf("game eval = %d µs, want 300 s", game.DurUS())
	}
	other := EvalTimeline(workload.Facebook(), rng(37))
	if other.DurUS() < Seconds(90) || other.DurUS() > Seconds(180) {
		t.Fatalf("app eval = %d µs, want 90-180 s", other.DurUS())
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	a := ForApp(workload.Chrome(), Seconds(120), rng(99))
	b := ForApp(workload.Chrome(), Seconds(120), rng(99))
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("same seed produced different phase counts")
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %d differs between identical seeds", i)
		}
	}
}

func TestValidateCatchesBadScripts(t *testing.T) {
	if err := (Script{}).Validate(); err == nil {
		t.Error("nil app should fail")
	}
	if err := (Script{App: workload.Home()}).Validate(); err == nil {
		t.Error("empty phases should fail")
	}
	s := Script{App: workload.Home(), Phases: []Phase{{workload.InterIdle, 0}}}
	if err := s.Validate(); err == nil {
		t.Error("zero-duration phase should fail")
	}
	if err := (&Timeline{}).Validate(); err == nil {
		t.Error("empty timeline should fail")
	}
}
