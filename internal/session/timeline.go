package session

import (
	"fmt"

	"nextdvfs/internal/workload"
)

// Phase is one interaction state held for a duration.
type Phase struct {
	Inter workload.Interaction
	DurUS int64
}

// Script is one app session: the app plus its interaction phases.
type Script struct {
	App    workload.App
	Phases []Phase
}

// DurUS returns the script's total duration.
func (s Script) DurUS() int64 {
	var d int64
	for _, p := range s.Phases {
		d += p.DurUS
	}
	return d
}

// Validate reports an inconsistency (nil app, empty or non-positive
// phases), or nil.
func (s Script) Validate() error {
	if s.App == nil {
		return fmt.Errorf("session: script has no app")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("session: script for %q has no phases", s.App.Name())
	}
	for i, p := range s.Phases {
		if p.DurUS <= 0 {
			return fmt.Errorf("session: script for %q phase %d has duration %d", s.App.Name(), i, p.DurUS)
		}
	}
	return nil
}

// Timeline is a sequence of scripts executed back to back — one user
// session possibly spanning several apps (like the paper's
// home→Facebook→Spotify session in Fig. 1/Fig. 3).
type Timeline struct {
	Scripts []Script
}

// DurUS returns the total timeline duration.
func (t *Timeline) DurUS() int64 {
	var d int64
	for _, s := range t.Scripts {
		d += s.DurUS()
	}
	return d
}

// Validate checks every script.
func (t *Timeline) Validate() error {
	if len(t.Scripts) == 0 {
		return fmt.Errorf("session: empty timeline")
	}
	for _, s := range t.Scripts {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Cursor walks a timeline in non-decreasing time order with O(1)
// amortized lookups. The engine holds one cursor per run.
type Cursor struct {
	tl        *Timeline
	si, pi    int
	phaseEnd  int64 // absolute end time of current phase
	scriptNew bool  // true when the cursor just entered a new script
}

// NewCursor returns a cursor positioned at time 0.
func NewCursor(tl *Timeline) *Cursor {
	c := &Cursor{tl: tl, scriptNew: true}
	if len(tl.Scripts) > 0 && len(tl.Scripts[0].Phases) > 0 {
		c.phaseEnd = tl.Scripts[0].Phases[0].DurUS
	}
	return c
}

// At returns the active app and interaction at nowUS. ok is false once
// the timeline is exhausted. appEntered is true exactly once per script:
// on the first call that falls inside it (the engine uses it to Reset
// the app and notify controllers of an app switch).
//
// nowUS must be non-decreasing across calls.
func (c *Cursor) At(nowUS int64) (app workload.App, inter workload.Interaction, appEntered, ok bool) {
	for {
		if c.si >= len(c.tl.Scripts) {
			return nil, workload.InterIdle, false, false
		}
		s := c.tl.Scripts[c.si]
		if c.pi < len(s.Phases) && nowUS < c.phaseEnd {
			entered := c.scriptNew
			c.scriptNew = false
			return s.App, s.Phases[c.pi].Inter, entered, true
		}
		// advance phase
		c.pi++
		if c.pi < len(s.Phases) {
			c.phaseEnd += s.Phases[c.pi].DurUS
			continue
		}
		// advance script
		c.si++
		c.pi = 0
		c.scriptNew = true
		if c.si < len(c.tl.Scripts) {
			c.phaseEnd += c.tl.Scripts[c.si].Phases[0].DurUS
		}
	}
}

// Seconds converts seconds to the µs units used across the simulator.
func Seconds(s float64) int64 { return int64(s * 1e6) }
