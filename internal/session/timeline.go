package session

import (
	"fmt"

	"nextdvfs/internal/workload"
)

// Phase is one interaction state held for a duration.
type Phase struct {
	Inter workload.Interaction
	DurUS int64
}

// Script is one app session: the app plus its interaction phases.
type Script struct {
	App    workload.App
	Phases []Phase
}

// DurUS returns the script's total duration.
func (s Script) DurUS() int64 {
	var d int64
	for _, p := range s.Phases {
		d += p.DurUS
	}
	return d
}

// Validate reports an inconsistency (nil app, empty or non-positive
// phases), or nil.
func (s Script) Validate() error {
	if s.App == nil {
		return fmt.Errorf("session: script has no app")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("session: script for %q has no phases", s.App.Name())
	}
	for i, p := range s.Phases {
		if p.DurUS <= 0 {
			return fmt.Errorf("session: script for %q phase %d has duration %d", s.App.Name(), i, p.DurUS)
		}
	}
	return nil
}

// Timeline is a sequence of scripts executed back to back — one user
// session possibly spanning several apps (like the paper's
// home→Facebook→Spotify session in Fig. 1/Fig. 3).
type Timeline struct {
	Scripts []Script
}

// DurUS returns the total timeline duration.
func (t *Timeline) DurUS() int64 {
	var d int64
	for _, s := range t.Scripts {
		d += s.DurUS()
	}
	return d
}

// Validate checks every script.
func (t *Timeline) Validate() error {
	if len(t.Scripts) == 0 {
		return fmt.Errorf("session: empty timeline")
	}
	for _, s := range t.Scripts {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Cursor walks a timeline in non-decreasing time order with O(1)
// amortized lookups. The engine holds one cursor per run.
type Cursor struct {
	tl        *Timeline
	si, pi    int
	phaseEnd  int64 // absolute end time of current phase
	scriptNew bool  // true when the cursor just entered a new script

	// curApp/curInter cache the active script's app and phase
	// interaction so the per-tick fast path (same phase as last call)
	// returns without touching the Scripts slice — re-reading
	// tl.Scripts[si] copies a 40-byte Script header every tick
	// otherwise. They are refreshed on every phase/script advance.
	curApp   workload.App
	curInter workload.Interaction
}

// NewCursor returns a cursor positioned at time 0.
func NewCursor(tl *Timeline) *Cursor {
	c := &Cursor{tl: tl}
	c.Rewind()
	return c
}

// Rewind repositions the cursor at time 0 so the same cursor can walk
// the timeline again — the engine holds one cursor per configuration
// and rewinds it each Run instead of allocating a fresh one.
func (c *Cursor) Rewind() {
	c.si, c.pi = 0, 0
	c.scriptNew = true
	c.phaseEnd = 0
	c.curApp, c.curInter = nil, workload.InterIdle
	if len(c.tl.Scripts) > 0 {
		s := &c.tl.Scripts[0]
		c.curApp = s.App
		if len(s.Phases) > 0 {
			c.phaseEnd = s.Phases[0].DurUS
			c.curInter = s.Phases[0].Inter
		}
	}
}

// At returns the active app and interaction at nowUS. ok is false once
// the timeline is exhausted. appEntered is true exactly once per script:
// on the first call that falls inside it (the engine uses it to Reset
// the app and notify controllers of an app switch).
//
// nowUS must be non-decreasing across calls.
func (c *Cursor) At(nowUS int64) (app workload.App, inter workload.Interaction, appEntered, ok bool) {
	for {
		if c.si >= len(c.tl.Scripts) {
			return nil, workload.InterIdle, false, false
		}
		// Fast path: still inside the cached phase. phaseEnd is only
		// ever extended while pi indexes a valid phase, so the explicit
		// pi bound check of the slow path is implied here.
		if nowUS < c.phaseEnd {
			entered := c.scriptNew
			c.scriptNew = false
			return c.curApp, c.curInter, entered, true
		}
		s := &c.tl.Scripts[c.si]
		// advance phase
		c.pi++
		if c.pi < len(s.Phases) {
			c.phaseEnd += s.Phases[c.pi].DurUS
			c.curInter = s.Phases[c.pi].Inter
			continue
		}
		// advance script
		c.si++
		c.pi = 0
		c.scriptNew = true
		if c.si < len(c.tl.Scripts) {
			ns := &c.tl.Scripts[c.si]
			c.phaseEnd += ns.Phases[0].DurUS
			c.curApp = ns.App
			c.curInter = ns.Phases[0].Inter
		}
	}
}

// ScriptIndex returns the index of the script the cursor currently
// points at. It is meaningful after an At call that returned ok; the
// batched engine uses it to pick each lane's own App instance for the
// position the shared cursor resolved.
func (c *Cursor) ScriptIndex() int { return c.si }

// Seconds converts seconds to the µs units used across the simulator.
func Seconds(s float64) int64 { return int64(s * 1e6) }
