package sim

import (
	"testing"

	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// allocEngine builds a Note 9 engine over a mixed watch/idle/scroll
// timeline of the given length. Watch and scroll exercise the frame
// pipeline and the input-boost path; the per-phase split scales with
// the duration so short and long runs have the same shape.
func allocEngine(t *testing.T, secs float64) *Engine {
	t.Helper()
	third := session.Seconds(secs / 3)
	tl := &session.Timeline{Scripts: []session.Script{{
		App: workload.YouTube(),
		Phases: []session.Phase{
			{Inter: workload.InterWatch, DurUS: third},
			{Inter: workload.InterIdle, DurUS: third},
			{Inter: workload.InterScroll, DurUS: third},
		},
	}}}
	e, err := New(Note9Config(tl, 7))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunZeroAllocsPerTick pins the tentpole guarantee: the tick loop
// itself allocates nothing. Run still performs a fixed per-run prologue
// (sample buffers, governor reset), so the assertion is differential —
// a run with 4× the ticks must cost exactly the same number of
// allocations as the short run. Any per-tick allocation would scale
// with the tick count and break the equality.
func TestRunZeroAllocsPerTick(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	short := allocEngine(t, 3)
	long := allocEngine(t, 12)
	// Warm both engines: first runs seed lazily-grown governor maps.
	short.Run()
	long.Run()
	aShort := testing.AllocsPerRun(5, func() { short.Run() })
	aLong := testing.AllocsPerRun(5, func() { long.Run() })
	if aLong > aShort {
		perTick := (aLong - aShort) / float64((12-3)*1000)
		t.Fatalf("tick loop allocates: %.0f allocs for 3 s vs %.0f for 12 s (%.4f allocs/tick, want 0)",
			aShort, aLong, perTick)
	}
	// Sanity: the per-run prologue must stay small and bounded too, so
	// a regression cannot hide behind equal-but-huge run costs.
	if aShort > 40 {
		t.Fatalf("per-run prologue allocates %.0f times, want <= 40", aShort)
	}
}
