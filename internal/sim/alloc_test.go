package sim

import (
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// allocEngine builds a Note 9 engine over a mixed watch/idle/scroll
// timeline of the given length. Watch and scroll exercise the frame
// pipeline and the input-boost path; the per-phase split scales with
// the duration so short and long runs have the same shape.
func allocEngine(t *testing.T, secs float64) *Engine {
	return allocEngineWith(t, secs, nil)
}

// allocEngineWith is allocEngine with an optional controller in the
// loop (the agent-path variant of the zero-alloc pin).
func allocEngineWith(t *testing.T, secs float64, controller ctrl.Controller) *Engine {
	t.Helper()
	third := session.Seconds(secs / 3)
	tl := &session.Timeline{Scripts: []session.Script{{
		App: workload.YouTube(),
		Phases: []session.Phase{
			{Inter: workload.InterWatch, DurUS: third},
			{Inter: workload.InterIdle, DurUS: third},
			{Inter: workload.InterScroll, DurUS: third},
		},
	}}}
	cfg := Note9Config(tl, 7)
	if controller != nil {
		cfg.Controller = controller
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunZeroAllocsPerTick pins the tentpole guarantee: the tick loop
// itself allocates nothing. Run still performs a fixed per-run prologue
// (sample buffers, governor reset), so the assertion is differential —
// a run with 4× the ticks must cost exactly the same number of
// allocations as the short run. Any per-tick allocation would scale
// with the tick count and break the equality.
func TestRunZeroAllocsPerTick(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	short := allocEngine(t, 3)
	long := allocEngine(t, 12)
	// Warm both engines: first runs seed lazily-grown governor maps.
	short.Run()
	long.Run()
	aShort := testing.AllocsPerRun(5, func() { short.Run() })
	aLong := testing.AllocsPerRun(5, func() { long.Run() })
	if aLong > aShort {
		perTick := (aLong - aShort) / float64((12-3)*1000)
		t.Fatalf("tick loop allocates: %.0f allocs for 3 s vs %.0f for 12 s (%.4f allocs/tick, want 0)",
			aShort, aLong, perTick)
	}
	// Sanity: the per-run prologue must stay small and bounded too, so
	// a regression cannot hide behind equal-but-huge run costs.
	if aShort > 40 {
		t.Fatalf("per-run prologue allocates %.0f times, want <= 40", aShort)
	}
}

// TestDoubleQTrainingZeroAllocsPerTick extends the zero-alloc pin to
// the learner-registry path: a training doubleq agent — two Q-tables,
// interface dispatch for every selection and update — rides the tick
// loop. Tabular RL allocates when it discovers a NEW state (a map row),
// so the pin first saturates state discovery with warm-up runs, then
// asserts the differential cost is per-state-discovery noise, not
// per-tick garbage: interface dispatch, ε-greedy selection and the
// double-estimator update must all be allocation-free on revisited
// states.
func TestDoubleQTrainingZeroAllocsPerTick(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	cfg := core.DefaultAgentConfig()
	cfg.Seed = 7
	cfg.Learner = "doubleq"
	agent := core.NewAgent(cfg)
	short := allocEngineWith(t, 3, agent)
	long := allocEngineWith(t, 12, agent)
	// Warm-up: let the agent visit (and re-visit) the state space of
	// both timelines so later runs mostly update existing rows.
	for i := 0; i < 4; i++ {
		short.Run()
		long.Run()
	}
	aShort := testing.AllocsPerRun(5, func() { short.Run() })
	aLong := testing.AllocsPerRun(5, func() { long.Run() })
	diff := aLong - aShort
	if diff < 0 {
		diff = 0
	}
	// 9 extra simulated seconds = 9000 extra ticks and 90 extra control
	// steps. A per-tick (or even per-control-step) allocation would cost
	// ≥ 90 extra allocs; genuine late state discovery measures far
	// below that.
	if diff > 24 {
		perTick := diff / float64((12-3)*1000)
		t.Fatalf("doubleq training run allocates: %.1f allocs for 3 s vs %.1f for 12 s (%.4f allocs/tick)",
			aShort, aLong, perTick)
	}
}

// TestBatchRunZeroAllocsPerTick extends the zero-alloc pin to the
// lockstep engine: the batched tick loop must allocate nothing, at any
// width. The assertion is differential twice over — within each width
// (4× the ticks, same allocation count) and across widths (k=4 and k=1
// must measure identical per-tick allocation counts, i.e. zero), so a
// per-lane-per-tick allocation cannot hide behind the per-run prologue
// growing with k.
func TestBatchRunZeroAllocsPerTick(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	mkBatch := func(k int, secs float64) *BatchEngine {
		cfgs := make([]Config, k)
		for r := range cfgs {
			cfgs[r] = Note9Config(batchTimeline(secs), int64(7+r))
		}
		b, err := NewBatch(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	perTick := make(map[int]float64)
	for _, k := range []int{1, 4} {
		short := mkBatch(k, 3)
		long := mkBatch(k, 12)
		// Warm both: first runs seed lazily-grown governor maps.
		short.Run()
		long.Run()
		aShort := testing.AllocsPerRun(5, func() { short.Run() })
		aLong := testing.AllocsPerRun(5, func() { long.Run() })
		if aLong > aShort {
			pt := (aLong - aShort) / float64((12-3)*1000)
			t.Fatalf("k=%d batched tick loop allocates: %.0f allocs for 3 s vs %.0f for 12 s (%.4f allocs/tick, want 0)",
				k, aShort, aLong, pt)
		}
		perTick[k] = 0
	}
	if perTick[1] != perTick[4] {
		t.Fatalf("per-tick allocation count differs across widths: k=1 %.4f, k=4 %.4f", perTick[1], perTick[4])
	}
}
