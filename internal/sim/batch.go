package sim

import (
	"fmt"
	"math/rand"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/display"
	"nextdvfs/internal/frand"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/power"
	"nextdvfs/internal/session"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/stats"
	"nextdvfs/internal/thermal"
	"nextdvfs/internal/workload"
)

// BatchEngine steps k identically-structured runs in lockstep through
// one shared tick loop. The sweep-invariant structure — timeline
// cursor, per-OPP power/capacity tables, thermal neighbor lists,
// ambient/refresh schedules — is walked and indexed once per tick and
// shared by every lane; everything mutable is struct-of-arrays: the
// per-cluster utilization windows, renderer pipeline state and cadence
// clocks live in cluster-major parallel slices (cluster i, lane r at
// [i*k+r]) and the thermal node temperatures in a node-major
// thermal.Batch, so the hot integration loops load each table entry
// once and sweep contiguous lanes.
//
// Bit-identity is the contract, not a best effort: lane r of a batch
// produces byte-for-byte the Result that a scalar Engine produces from
// cfgs[r] alone. The tick loop is stage-major (workload, power,
// thermal, display, governor/controller — each stage sweeps all lanes
// before the next begins), but within a lane the arithmetic touches
// only that lane's state in exactly the scalar order, and lanes never
// mix floating-point terms, so reordering across lanes cannot perturb
// any lane's values. TestBatchMatchesScalarEngine pins this
// differentially for every platform × scenario preset.
//
// Lanes may differ in seed, governor/controller (scheme), record
// cadence, base-power fractions and fault hooks; NewBatch rejects
// configs whose shared structure (chip OPP tables, power constants,
// thermal network, timeline shape, schedules, panel rate, tick) is not
// identical, so callers can attempt batching and fall back to scalar
// engines on error.
type BatchEngine struct {
	k, nc int
	cfgs  []Config

	// shared immutable structure (validated identical across lanes, then
	// taken from lane 0).
	powTbl     []*power.Table
	capPerTick [][]float64
	maxCapTick []float64
	tempCo     []float64 // per cluster: Table.TempCo
	idleW      []float64 // per cluster: Table.IdleW
	bigPerCore []float64
	gpuDrain   []float64
	bigIdx     int
	gpuIdx     int
	bigCoresF  float64
	bgSel      []int // cluster i -> which Demand field feeds its background load
	nodeIdx    []int
	skinIdx    int
	bigTempI   int
	opps       [][]int
	cursor     *session.Cursor
	nativeHz   int
	tickUS     int64
	dtSec      float64
	therm      *thermal.Batch
	sensor     *thermal.VirtualSensor

	// per-lane subsystem instances, lane-indexed [k] (clusters is
	// cluster-major [nc*k]; apps is script-major [nScripts][k]).
	clusters []*soc.Cluster
	displays []*display.Pipeline
	govs     []governor.Governor
	boosters []governor.InputBooster
	ctrls    []ctrl.Controller
	rngs     []*rand.Rand
	apps     [][]workload.App

	// fast is set when every app in every lane is a *workload.ProfileApp:
	// the tick loop then takes the devirtualized TickFast/StartFrameFast
	// path over frand's replayed (bit-identical) streams instead of the
	// App interface over the standard Rand.
	fast  bool
	frngs []*frand.Rand
	pApps [][]*workload.ProfileApp

	// struct-of-arrays mutable state. Cluster-major [nc*k] unless noted.
	// The frame-pipeline state is the exception: it is branchy and
	// accessed as a unit per lane, so it lives as one small struct per
	// lane ([k]) — a single bounds check per lane instead of six.
	rend         []rendState // [k]
	busyCycles   []float64
	curCapCycles []float64
	maxCapCycles []float64
	utilEWMA     []stats.EWMA
	lastUtil     []float64
	tickRender   []float64
	// DVFS mirror: the current OPP's per-tick capacity and power-table
	// row for every lane-cluster, plus the renderer drain rates, cached
	// flat so the per-tick loops never chase cluster pointers or index
	// OPP tables. Clusters only change OPP inside governor decisions,
	// controller actuation and the run prologue — syncDVFS refreshes the
	// mirror at exactly those points.
	capCurTick  []float64 // [nc*k]
	dynCur      []float64 // [nc*k]
	leakCur     []float64 // [nc*k]
	bigDrainPC  []float64 // [k] big-cluster per-core drain at cur OPP
	gpuDrainCur []float64 // [k] GPU drain per tick at cur OPP
	powerBuf    []float64 // node-major [numNodes*k]
	lastPowerW  []float64 // [k]
	ctlPowerSum []float64 // [k]
	ctlPowerN   []int     // [k]
	nextGovUS   []int64   // [k]
	nextObsUS   []int64   // [k]
	nextCtlUS   []int64   // [k]
	nextRecUS   []int64   // [k]

	// per-lane hot-loop constants mirrored out of cfgs.
	baseW    []float64 // [k]
	skinFrac []float64 // [k]
	offFrac  []float64 // [k]

	// per-tick lane scratch, [k]. The demand fields are mirrored into
	// struct-of-arrays form (demBig/demLittle/demGPU) so integratePower's
	// background routing indexes one flat row per cluster instead of
	// switching on a field per lane; tbBuf/tdBuf hold the batched
	// big-cluster and device-sensor temperature reads.
	demand    []workload.Demand
	demBig    []float64
	demLittle []float64
	demGPU    []float64
	demZero   []float64 // all-zero row for clusters with no background routing
	tbBuf     []float64
	tdBuf     []float64
	ambBuf    []float64 // ambient broadcast for clusters with no thermal node
	sinkZero  []float64 // discard row for chips with neither node nor skin
	rendering []bool
	tickPower []float64

	// Kernel operands per cluster, resolved once by buildIPArgs.
	ip       []ipArgs
	zeroRows []int // powerBuf rows accumulated into per tick
	needAmb  bool  // some cluster has no thermal node

	// per-lane controller/reporting scratch. Each lane gets its own view
	// and snapshot buffers so a controller that retains a slice past its
	// call can never observe another lane's data.
	views       [][]ctrl.ClusterView
	obsBufs     [][]governor.Observation
	snapScratch []ctrl.Snapshot
	sampleInts  [][]int
	sampleUtils [][]float64
	results     []Result
}

// ipArgs is one cluster's resolved power-integration operands: fixed
// [k] windows into the SoA backing arrays plus the cluster constants,
// in the exact argument order of ipLanes/ipLanesAVX2.
type ipArgs struct {
	dem, capCur, render, busyW, curW, maxW, lastU []float64
	dynCur, leakCur, nodeT, sink                  []float64
	capMax, tempCo, idleW                         float64
}

// rendState is one lane's two-stage frame pipeline — the same fields
// the scalar Engine keeps inline.
type rendState struct {
	cpuJob       workload.FrameJob
	cpuRemaining float64
	gpuRemaining float64
	cpuActive    bool
	gpuActive    bool
	gpuDone      bool
}

// Background-demand routing per cluster, resolved once at construction
// so integratePower's inner loop switches on a small int instead of
// comparing cluster pointers per lane.
const (
	bgNone = iota
	bgBig
	bgLittle
	bgGPU
)

// NewBatch builds a lockstep engine over k configs. Configs are
// validated and defaulted like New does, then checked for structural
// compatibility against lane 0; any mismatch (or shared mutable
// subsystem instances between lanes) returns an error so callers can
// fall back to k scalar engines. k=1 is allowed and degenerates to a
// scalar run.
func NewBatch(cfgs []Config) (*BatchEngine, error) {
	k := len(cfgs)
	if k == 0 {
		return nil, fmt.Errorf("sim: batch needs at least one config")
	}
	local := make([]Config, k)
	for r := range cfgs {
		c := cfgs[r]
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", r, err)
		}
		c.applyDefaults()
		local[r] = c
	}
	base := &local[0]
	for r := 1; r < k; r++ {
		if err := lockstepCompatible(base, &local[r]); err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", r, err)
		}
	}
	if err := checkDistinctLanes(local); err != nil {
		return nil, err
	}
	if _, ok := base.Thermal.Index(thermal.NodeBig); !ok {
		return nil, fmt.Errorf("sim: batch needs a %q thermal node", thermal.NodeBig)
	}

	b := &BatchEngine{k: k, cfgs: local}
	nc := len(base.Chip.Clusters)
	b.nc = nc
	b.tickUS = base.TickUS
	b.dtSec = float64(base.TickUS) / 1e6
	b.nativeHz = base.Display.RefreshHz
	b.cursor = session.NewCursor(base.Timeline)
	b.therm = thermal.NewBatch(base.Thermal, k)
	b.sensor = base.DevSense

	// Shared per-cluster tables, identical to what New precomputes for
	// lane 0 — and, by the compatibility check, to what it would compute
	// for every other lane.
	var big0, little0, gpu0 *soc.Cluster
	for _, c := range base.Chip.Clusters {
		switch c.Name {
		case soc.ClusterBig:
			big0 = c
		case soc.ClusterLITTLE:
			little0 = c
		case soc.ClusterGPU:
			gpu0 = c
		}
	}
	if big0 == nil || gpu0 == nil {
		for _, c := range base.Chip.Clusters {
			if big0 == nil && c.Kind == soc.KindCPU {
				big0 = c
			}
			if gpu0 == nil && c.Kind == soc.KindGPU {
				gpu0 = c
			}
		}
	}
	b.powTbl = make([]*power.Table, nc)
	b.capPerTick = make([][]float64, nc)
	b.maxCapTick = make([]float64, nc)
	b.tempCo = make([]float64, nc)
	b.idleW = make([]float64, nc)
	b.opps = make([][]int, nc)
	b.nodeIdx = make([]int, nc)
	b.bgSel = make([]int, nc)
	b.bigIdx, b.gpuIdx = -1, -1
	for i, c := range base.Chip.Clusters {
		b.powTbl[i] = base.Power.Table(c)
		b.tempCo[i] = b.powTbl[i].TempCo()
		b.idleW[i] = b.powTbl[i].IdleW()
		caps := make([]float64, c.NumOPPs())
		khz := make([]int, c.NumOPPs())
		for j := range caps {
			caps[j] = float64(c.OPPAt(j).FreqKHz) * 1e3 * c.IPC * float64(c.Cores) * b.dtSec
			khz[j] = c.OPPAt(j).FreqKHz
		}
		b.capPerTick[i] = caps
		b.maxCapTick[i] = caps[len(caps)-1]
		b.opps[i] = khz
		if idx, ok := base.Thermal.Index(c.Name); ok {
			b.nodeIdx[i] = idx
		} else {
			b.nodeIdx[i] = -1
		}
		// Same case order as the scalar engine's background switch.
		switch {
		case c == big0:
			b.bgSel[i] = bgBig
		case c == little0:
			b.bgSel[i] = bgLittle
		case c == gpu0:
			b.bgSel[i] = bgGPU
		default:
			b.bgSel[i] = bgNone
		}
		if c == big0 {
			b.bigIdx = i
		}
		if c == gpu0 {
			b.gpuIdx = i
		}
	}
	if big0 != nil {
		b.bigPerCore = make([]float64, big0.NumOPPs())
		for j := range b.bigPerCore {
			b.bigPerCore[j] = float64(big0.OPPAt(j).FreqKHz) * 1e3 * big0.IPC
		}
		b.bigCoresF = float64(big0.Cores)
	}
	if gpu0 != nil {
		b.gpuDrain = make([]float64, gpu0.NumOPPs())
		for j := range b.gpuDrain {
			b.gpuDrain[j] = float64(gpu0.OPPAt(j).FreqKHz) * 1e3 * gpu0.IPC * float64(gpu0.Cores) * b.dtSec
		}
	}
	if skin, ok := base.Thermal.Index(thermal.NodeSkin); ok {
		b.skinIdx = skin
	} else {
		b.skinIdx = -1
	}
	b.bigTempI = base.Thermal.MustIndex(thermal.NodeBig)

	// Per-lane subsystems. Clusters are re-resolved per lane — the
	// structural check guarantees the name/kind resolution lands on the
	// same chip indices in every lane.
	b.clusters = make([]*soc.Cluster, nc*k)
	b.displays = make([]*display.Pipeline, k)
	b.govs = make([]governor.Governor, k)
	b.boosters = make([]governor.InputBooster, k)
	b.ctrls = make([]ctrl.Controller, k)
	b.rngs = make([]*rand.Rand, k)
	for r := range local {
		cfg := &local[r]
		for i, c := range cfg.Chip.Clusters {
			b.clusters[i*k+r] = c
		}
		b.displays[r] = cfg.Display
		b.govs[r] = cfg.Governor
		b.boosters[r], _ = cfg.Governor.(governor.InputBooster)
		b.ctrls[r] = cfg.Controller
		b.rngs[r] = rand.New(rand.NewSource(cfg.Seed))
	}
	nScripts := len(base.Timeline.Scripts)
	b.apps = make([][]workload.App, nScripts)
	b.fast = true
	for si := range b.apps {
		lanes := make([]workload.App, k)
		for r := range local {
			lanes[r] = local[r].Timeline.Scripts[si].App
			if _, ok := lanes[r].(*workload.ProfileApp); !ok {
				b.fast = false
			}
		}
		b.apps[si] = lanes
	}
	if b.fast {
		b.pApps = make([][]*workload.ProfileApp, nScripts)
		for si := range b.apps {
			lanes := make([]*workload.ProfileApp, k)
			for r := range b.apps[si] {
				lanes[r] = b.apps[si][r].(*workload.ProfileApp)
			}
			b.pApps[si] = lanes
		}
		b.frngs = make([]*frand.Rand, k)
		for r := range local {
			b.frngs[r] = frand.New(local[r].Seed)
		}
	}

	// SoA state and scratch.
	b.rend = make([]rendState, k)
	b.busyCycles = make([]float64, nc*k)
	b.curCapCycles = make([]float64, nc*k)
	b.maxCapCycles = make([]float64, nc*k)
	b.utilEWMA = make([]stats.EWMA, nc*k)
	for i := range b.utilEWMA {
		b.utilEWMA[i].Alpha = 0.5
	}
	b.lastUtil = make([]float64, nc*k)
	b.tickRender = make([]float64, nc*k)
	b.capCurTick = make([]float64, nc*k)
	b.dynCur = make([]float64, nc*k)
	b.leakCur = make([]float64, nc*k)
	b.bigDrainPC = make([]float64, k)
	b.gpuDrainCur = make([]float64, k)
	b.powerBuf = make([]float64, base.Thermal.NumNodes()*k)
	b.lastPowerW = make([]float64, k)
	b.ctlPowerSum = make([]float64, k)
	b.ctlPowerN = make([]int, k)
	b.nextGovUS = make([]int64, k)
	b.nextObsUS = make([]int64, k)
	b.nextCtlUS = make([]int64, k)
	b.nextRecUS = make([]int64, k)
	b.baseW = make([]float64, k)
	b.skinFrac = make([]float64, k)
	b.offFrac = make([]float64, k)
	for r := range local {
		b.baseW[r] = local[r].Power.BaseW
		b.skinFrac[r] = local[r].SkinPowerFrac
		b.offFrac[r] = local[r].ScreenOffBaseFrac
	}
	b.demand = make([]workload.Demand, k)
	b.demBig = make([]float64, k)
	b.demLittle = make([]float64, k)
	b.demGPU = make([]float64, k)
	b.demZero = make([]float64, k)
	b.tbBuf = make([]float64, k)
	b.tdBuf = make([]float64, k)
	b.ambBuf = make([]float64, k)
	b.sinkZero = make([]float64, k)
	b.rendering = make([]bool, k)
	b.tickPower = make([]float64, k)
	b.views = make([][]ctrl.ClusterView, k)
	b.obsBufs = make([][]governor.Observation, k)
	for r := 0; r < k; r++ {
		b.views[r] = make([]ctrl.ClusterView, nc)
		b.obsBufs[r] = make([]governor.Observation, nc)
	}
	b.snapScratch = make([]ctrl.Snapshot, k)
	b.sampleInts = make([][]int, k)
	b.sampleUtils = make([][]float64, k)
	b.buildIPArgs()
	return b, nil
}

// buildIPArgs resolves each cluster's kernel operands once: every slice
// row integratePower sweeps is a fixed window into a backing array that
// never reallocates, so the per-tick loop reduces to kernel dispatch.
// zeroRows lists the distinct powerBuf rows clusters accumulate into
// (the skin row is assigned, not accumulated, and rows no cluster sinks
// into stay at their initial zeros), so the per-tick clear touches only
// live rows instead of the whole node-major buffer.
func (b *BatchEngine) buildIPArgs() {
	k := b.k
	temps := b.therm.Temps()
	b.ip = make([]ipArgs, b.nc)
	for i := 0; i < b.nc; i++ {
		a := &b.ip[i]
		cb := i * k
		a.capMax = b.maxCapTick[i]
		a.tempCo = b.tempCo[i]
		a.idleW = b.idleW[i]
		a.capCur = b.capCurTick[cb:][:k:k]
		a.dynCur = b.dynCur[cb:][:k:k]
		a.leakCur = b.leakCur[cb:][:k:k]
		a.render = b.tickRender[cb:][:k:k]
		a.busyW = b.busyCycles[cb:][:k:k]
		a.curW = b.curCapCycles[cb:][:k:k]
		a.maxW = b.maxCapCycles[cb:][:k:k]
		a.lastU = b.lastUtil[cb:][:k:k]
		switch b.bgSel[i] {
		case bgBig:
			a.dem = b.demBig[:k:k]
		case bgLittle:
			a.dem = b.demLittle[:k:k]
		case bgGPU:
			a.dem = b.demGPU[:k:k]
		default:
			a.dem = b.demZero[:k:k]
		}
		node := b.nodeIdx[i]
		if node >= 0 {
			a.nodeT = temps[node*k:][:k:k]
			a.sink = b.powerBuf[node*k:][:k:k]
			if node != b.skinIdx {
				seen := false
				for _, row := range b.zeroRows {
					if row == node {
						seen = true
						break
					}
				}
				if !seen {
					b.zeroRows = append(b.zeroRows, node)
				}
			}
		} else {
			a.nodeT = b.ambBuf[:k:k]
			b.needAmb = true
			if b.skinIdx >= 0 {
				a.sink = b.powerBuf[b.skinIdx*k:][:k:k]
			} else {
				a.sink = b.sinkZero[:k:k]
			}
		}
	}
}

// Lanes returns the batch width k.
func (b *BatchEngine) Lanes() int { return b.k }

// lockstepCompatible reports why cfg cannot share a lockstep structure
// with base: any divergence in timeline shape, chip OPP tables, power
// constants, thermal network, sensor blend, panel rate, schedules or
// tick step. Seeds, governors/controllers, cadences, base-power
// fractions and fault hooks are free to differ per lane.
func lockstepCompatible(base, cfg *Config) error {
	if cfg.TickUS != base.TickUS {
		return fmt.Errorf("tick %dµs differs from lane 0's %dµs", cfg.TickUS, base.TickUS)
	}
	if err := timelinesStructEqual(base.Timeline, cfg.Timeline); err != nil {
		return err
	}
	if err := chipsStructEqual(base.Chip, cfg.Chip); err != nil {
		return err
	}
	if cfg.Power.BaseW != base.Power.BaseW {
		return fmt.Errorf("base power %v differs from lane 0's %v", cfg.Power.BaseW, base.Power.BaseW)
	}
	for i, c := range base.Chip.Clusters {
		if !base.Power.Table(c).Equal(cfg.Power.Table(cfg.Chip.Clusters[i])) {
			return fmt.Errorf("power table for cluster %q differs from lane 0", c.Name)
		}
	}
	if !base.Thermal.StructEqual(cfg.Thermal) {
		return fmt.Errorf("thermal network differs from lane 0")
	}
	if !base.DevSense.BlendEqual(cfg.DevSense) {
		return fmt.Errorf("device-sensor blend differs from lane 0")
	}
	if cfg.Display.RefreshHz != base.Display.RefreshHz {
		return fmt.Errorf("panel rate %d Hz differs from lane 0's %d Hz", cfg.Display.RefreshHz, base.Display.RefreshHz)
	}
	if (base.Ambient == nil) != (cfg.Ambient == nil) {
		return fmt.Errorf("ambient schedule presence differs from lane 0")
	}
	if base.Ambient != nil {
		as, bs := base.Ambient.Steps(), cfg.Ambient.Steps()
		if len(as) != len(bs) {
			return fmt.Errorf("ambient schedule differs from lane 0")
		}
		for i := range as {
			if as[i] != bs[i] {
				return fmt.Errorf("ambient schedule differs from lane 0")
			}
		}
	}
	if (base.Refresh == nil) != (cfg.Refresh == nil) {
		return fmt.Errorf("refresh schedule presence differs from lane 0")
	}
	if base.Refresh != nil {
		as, bs := base.Refresh.Steps(), cfg.Refresh.Steps()
		if len(as) != len(bs) {
			return fmt.Errorf("refresh schedule differs from lane 0")
		}
		for i := range as {
			if as[i] != bs[i] {
				return fmt.Errorf("refresh schedule differs from lane 0")
			}
		}
	}
	return nil
}

func timelinesStructEqual(a, b *session.Timeline) error {
	if len(a.Scripts) != len(b.Scripts) {
		return fmt.Errorf("timeline has %d scripts, lane 0 has %d", len(b.Scripts), len(a.Scripts))
	}
	for si := range a.Scripts {
		sa, sb := &a.Scripts[si], &b.Scripts[si]
		if sa.App.Name() != sb.App.Name() {
			return fmt.Errorf("script %d app %q differs from lane 0's %q", si, sb.App.Name(), sa.App.Name())
		}
		if len(sa.Phases) != len(sb.Phases) {
			return fmt.Errorf("script %d phase count differs from lane 0", si)
		}
		for pi := range sa.Phases {
			if sa.Phases[pi] != sb.Phases[pi] {
				return fmt.Errorf("script %d phase %d differs from lane 0", si, pi)
			}
		}
	}
	return nil
}

func chipsStructEqual(a, b *soc.Chip) error {
	if len(a.Clusters) != len(b.Clusters) {
		return fmt.Errorf("chip has %d clusters, lane 0 has %d", len(b.Clusters), len(a.Clusters))
	}
	for i, ca := range a.Clusters {
		cb := b.Clusters[i]
		if ca.Name != cb.Name || ca.Kind != cb.Kind || ca.Cores != cb.Cores || ca.IPC != cb.IPC {
			return fmt.Errorf("cluster %d (%q) differs from lane 0", i, cb.Name)
		}
		if ca.NumOPPs() != cb.NumOPPs() {
			return fmt.Errorf("cluster %q OPP count differs from lane 0", cb.Name)
		}
		for j := 0; j < ca.NumOPPs(); j++ {
			if ca.OPPAt(j) != cb.OPPAt(j) {
				return fmt.Errorf("cluster %q OPP %d differs from lane 0", cb.Name, j)
			}
		}
	}
	return nil
}

// checkDistinctLanes rejects configs that share mutable subsystem
// instances between lanes: a shared chip, display, governor, thermal
// model, controller or app would make the lanes stomp each other's
// state mid-tick. (Schedules are fine to share — the batch only walks
// lane 0's — and so is DevSense, which the batch reads structurally.)
func checkDistinctLanes(cfgs []Config) error {
	chips := make(map[*soc.Chip]int, len(cfgs))
	therms := make(map[*thermal.Model]int, len(cfgs))
	disps := make(map[*display.Pipeline]int, len(cfgs))
	govs := make(map[governor.Governor]int, len(cfgs))
	ctrls := make(map[ctrl.Controller]int, len(cfgs))
	apps := make(map[workload.App]int, len(cfgs))
	for r := range cfgs {
		cfg := &cfgs[r]
		if p, dup := chips[cfg.Chip]; dup {
			return fmt.Errorf("sim: batch lanes %d and %d share a chip", p, r)
		}
		chips[cfg.Chip] = r
		if p, dup := therms[cfg.Thermal]; dup {
			return fmt.Errorf("sim: batch lanes %d and %d share a thermal model", p, r)
		}
		therms[cfg.Thermal] = r
		if p, dup := disps[cfg.Display]; dup {
			return fmt.Errorf("sim: batch lanes %d and %d share a display pipeline", p, r)
		}
		disps[cfg.Display] = r
		if p, dup := govs[cfg.Governor]; dup {
			return fmt.Errorf("sim: batch lanes %d and %d share a governor", p, r)
		}
		govs[cfg.Governor] = r
		if cfg.Controller != nil {
			if p, dup := ctrls[cfg.Controller]; dup {
				return fmt.Errorf("sim: batch lanes %d and %d share a controller", p, r)
			}
			ctrls[cfg.Controller] = r
		}
		for si := range cfg.Timeline.Scripts {
			app := cfg.Timeline.Scripts[si].App
			if p, dup := apps[app]; dup && p != r {
				return fmt.Errorf("sim: batch lanes %d and %d share app instance %q — compile one timeline per lane", p, r, app.Name())
			}
			apps[app] = r
		}
	}
	return nil
}

// Run executes all lanes and returns their Results in lane order. Each
// Result is byte-identical to what a scalar Engine built from the same
// config would return.
func (b *BatchEngine) Run() []Result {
	k := b.k
	amb := b.cfgs[0].Ambient
	ref := b.cfgs[0].Refresh

	// Per-lane prologue, mirroring the scalar Run exactly (the shared
	// pieces — ambient schedule, refresh schedule, thermal reset — are
	// walked once via lane 0's instances).
	for r := 0; r < k; r++ {
		b.cfgs[r].Chip.ResetDVFS()
	}
	if amb != nil {
		amb.Start()
		b.therm.AmbientC = amb.At(0)
	}
	b.therm.Reset()
	if ref != nil {
		for r := 0; r < k; r++ {
			b.displays[r].SetRefresh(b.nativeHz, 0)
		}
		ref.Start()
	}
	for r := 0; r < k; r++ {
		b.displays[r].Reset()
		b.govs[r].Reset()
		if c := b.ctrls[r]; c != nil {
			c.Reset()
		}
	}
	b.resetRunState()
	for r := 0; r < k; r++ {
		b.syncDVFS(r)
	}

	cursor := b.cursor
	cursor.Rewind()
	nSamples := make([]int, k)
	results := make([]Result, k)
	meters := make([]power.Meter, k)
	accs := make([]accumulators, k)
	for r := 0; r < k; r++ {
		cfg := &b.cfgs[r]
		nSamples[r] = int(cfg.Timeline.DurUS()/cfg.RecordIntervalUS) + 2
		b.sampleInts[r] = make([]int, 0, nSamples[r]*b.nc*2)
		b.sampleUtils[r] = make([]float64, 0, nSamples[r]*b.nc)
		if c := b.ctrls[r]; c != nil {
			results[r].Scheme = c.Name()
		} else {
			results[r].Scheme = b.govs[r].Name()
		}
	}
	b.results = results

	dt := b.tickUS
	dtSec := b.dtSec
	now := int64(0)

	// Hot-loop state, hoisted once and cut to length k so the per-lane
	// sweeps below index without bounds checks or repeated field loads.
	demand := b.demand[:k:k]
	demBig := b.demBig[:k:k]
	demLittle := b.demLittle[:k:k]
	demGPU := b.demGPU[:k:k]
	tbBuf := b.tbBuf[:k:k]
	tdBuf := b.tdBuf[:k:k]
	rendering := b.rendering[:k:k]
	tickPower := b.tickPower[:k:k]
	lastPowerW := b.lastPowerW[:k:k]
	ctlPowerSum := b.ctlPowerSum[:k:k]
	ctlPowerN := b.ctlPowerN[:k:k]
	nextGovUS := b.nextGovUS[:k:k]
	nextRecUS := b.nextRecUS[:k:k]
	meterSl := meters[:k:k]
	accSl := accs[:k:k]
	temps := b.therm.Temps()
	tbRow := temps[b.bigTempI*k:][:k:k]

	for {
		now += dt
		_, inter, entered, ok := cursor.At(now)
		if !ok {
			break
		}
		si := cursor.ScriptIndex()
		lane := b.apps[si]
		if entered {
			for r := 0; r < k; r++ {
				app := lane[r]
				app.Reset()
				b.dropInFlightFrame(r)
				if c := b.ctrls[r]; c != nil {
					c.AppChanged(app.Name(), app.Class() == workload.ClassGame)
				}
			}
		}

		// Shared environment schedules: one lookup drives every lane.
		if amb != nil {
			b.therm.AmbientC = amb.At(now)
		}
		if ref != nil {
			// All displays carry the same rate at all times (it only ever
			// changes here), so lane 0's current rate stands in for all.
			if hz := ref.At(now); hz > 0 && hz != b.displays[0].RefreshHz {
				for r := 0; r < k; r++ {
					b.displays[r].SetRefresh(hz, now)
				}
			}
		}
		screenOff := inter == workload.InterOff
		boost := inter == workload.InterTouch || inter == workload.InterScroll || inter == workload.InterPlay

		// Stage 1: workload + renderer, per lane. The fast path calls the
		// concrete ProfileApp methods over the replayed rng stream; the
		// generic path is the App interface over the standard Rand.
		for i := range b.tickRender {
			b.tickRender[i] = 0
		}
		if b.fast {
			papps := b.pApps[si]
			for r := 0; r < k; r++ {
				if boost {
					if bo := b.boosters[r]; bo != nil {
						bo.OnInput(now)
					}
				}
				d := papps[r].TickFast(now, dt, inter, b.frngs[r])
				demand[r] = d
				demBig[r], demLittle[r], demGPU[r] = d.BigBg, d.LittleBg, d.GPUBg
				rendering[r] = b.advanceRenderer(r, nil, papps[r], inter, d, dtSec)
			}
		} else {
			for r := 0; r < k; r++ {
				if boost {
					if bo := b.boosters[r]; bo != nil {
						bo.OnInput(now)
					}
				}
				d := lane[r].Tick(now, dt, inter, b.rngs[r])
				demand[r] = d
				demBig[r], demLittle[r], demGPU[r] = d.BigBg, d.LittleBg, d.GPUBg
				rendering[r] = b.advanceRenderer(r, lane[r], nil, inter, d, dtSec)
			}
		}

		// Stage 2: batched power integration and thermal step across all
		// lanes, then one fused per-lane sweep: accounting, sensor reads,
		// display, and the governor/controller/trace cadences. Per lane
		// the arithmetic order is exactly the scalar engine's — the
		// accounting after the thermal step is fine because it feeds
		// nothing the thermal step reads.
		b.integratePower(screenOff)
		b.therm.Step(dtSec, b.powerBuf)

		// Batched temperature reads: the big-cluster node row is a copy,
		// the device sensor a node-outer weighted blend — both land in
		// per-lane scratch the accounting sweep below reads back.
		copy(tbBuf, tbRow)
		b.sensor.ReadAllBatchC(b.therm, tdBuf)

		for r := 0; r < k; r++ {
			acc := &accSl[r]
			p := tickPower[r]
			lastPowerW[r] = p
			ctlPowerSum[r] += p
			ctlPowerN[r]++
			meterSl[r].Accumulate(p, dtSec)
			acc.power.Push(p)

			tb := tbBuf[r]
			td := tdBuf[r]
			acc.tempBig.Push(tb)
			acc.tempDev.Push(td)

			expecting := rendering[r] || demand[r].WantFrame
			d := b.displays[r]
			d.Tick(now, expecting)
			f := d.FPS(now)
			acc.fps.Push(f)
			if expecting {
				acc.activeFPS.Push(f)
			}

			if now >= nextGovUS[r] {
				b.decideGovernor(r, now)
				nextGovUS[r] = now + b.govs[r].IntervalUS()
				b.syncDVFS(r)
			}
			if c := b.ctrls[r]; c != nil {
				if iv := c.ObserveIntervalUS(); iv > 0 && now >= b.nextObsUS[r] {
					snap := b.snapshot(r, now, f, lane[r], tb, td)
					c.Observe(snap)
					b.nextObsUS[r] = now + iv
				}
				if iv := c.ControlIntervalUS(); iv > 0 && now >= b.nextCtlUS[r] {
					snap := b.snapshot(r, now, f, lane[r], tb, td)
					if ctlPowerN[r] > 0 {
						snap.PowerW = ctlPowerSum[r] / float64(ctlPowerN[r])
					}
					ctlPowerSum[r], ctlPowerN[r] = 0, 0
					c.Control(snap, chipActuator{b.cfgs[r].Chip})
					b.nextCtlUS[r] = now + iv
					b.syncDVFS(r)
				}
			}
			if now >= nextRecUS[r] {
				if results[r].Samples == nil {
					results[r].Samples = make([]Sample, 0, nSamples[r])
				}
				results[r].Samples = append(results[r].Samples, b.sample(r, now, lane[r], inter, f, p, tb, td))
				nextRecUS[r] = now + b.cfgs[r].RecordIntervalUS
			}
		}
	}

	for r := 0; r < k; r++ {
		res := &results[r]
		d := b.displays[r]
		res.DurationS = float64(b.cfgs[r].Timeline.DurUS()) / 1e6
		res.AvgPowerW = meters[r].AvgW()
		res.PeakPowerW = accs[r].power.Max()
		res.EnergyJ = meters[r].EnergyJ
		res.AvgTempBigC = accs[r].tempBig.Mean()
		res.PeakTempBigC = accs[r].tempBig.Max()
		res.AvgTempDevC = accs[r].tempDev.Mean()
		res.PeakTempDevC = accs[r].tempDev.Max()
		res.AvgFPS = accs[r].fps.Mean()
		res.ActiveAvgFPS = accs[r].activeFPS.Mean()
		res.FramesDisplayed = d.Displayed()
		res.FramesDropped = d.Dropped()
		res.VSyncs = d.VSyncs()
	}
	b.results = nil
	return results
}

func (b *BatchEngine) resetRunState() {
	for r := 0; r < b.k; r++ {
		b.rend[r] = rendState{}
		b.nextGovUS[r], b.nextObsUS[r], b.nextCtlUS[r], b.nextRecUS[r] = 0, 0, 0, 0
		b.lastPowerW[r] = 0
		b.ctlPowerSum[r], b.ctlPowerN[r] = 0, 0
	}
	for i := range b.busyCycles {
		b.busyCycles[i] = 0
		b.curCapCycles[i] = 0
		b.maxCapCycles[i] = 0
		b.utilEWMA[i].Reset()
		b.lastUtil[i] = 0
	}
}

// syncDVFS refreshes lane r's DVFS mirror — the per-tick capacity,
// power-table row and renderer drain rates at each cluster's current
// OPP. Call after anything that can move an OPP index: the run
// prologue's ResetDVFS, a governor Decide (input boost can push cur via
// the floor) and a controller Control (cap/pin actuation).
func (b *BatchEngine) syncDVFS(r int) {
	k := b.k
	for i := 0; i < b.nc; i++ {
		idx := i*k + r
		cur := b.clusters[idx].Cur()
		b.capCurTick[idx] = b.capPerTick[i][cur]
		dyn, leak := b.powTbl[i].Row(cur)
		b.dynCur[idx] = dyn
		b.leakCur[idx] = leak
	}
	if b.bigIdx >= 0 {
		b.bigDrainPC[r] = b.bigPerCore[b.clusters[b.bigIdx*k+r].Cur()]
	}
	if b.gpuIdx >= 0 {
		b.gpuDrainCur[r] = b.gpuDrain[b.clusters[b.gpuIdx*k+r].Cur()]
	}
}

// dropInFlightFrame abandons lane r's partially rendered frame.
func (b *BatchEngine) dropInFlightFrame(r int) {
	rs := &b.rend[r]
	rs.cpuActive, rs.gpuActive, rs.gpuDone = false, false, false
	rs.cpuRemaining, rs.gpuRemaining = 0, 0
}

// advanceRenderer is the scalar engine's two-stage frame pipeline for
// lane r; same branches, same arithmetic, indexed into the SoA state.
// Exactly one of app/papp is non-nil — papp on the fast path, where the
// frame-cost draws come from the replayed rng.
func (b *BatchEngine) advanceRenderer(r int, app workload.App, papp *workload.ProfileApp, inter workload.Interaction, demand workload.Demand, dtSec float64) bool {
	d := b.displays[r]
	rs := &b.rend[r]
	if !rs.cpuActive && demand.WantFrame && d.BackBufferFree() {
		if papp != nil {
			rs.cpuJob = papp.StartFrameFast(inter, b.frngs[r])
		} else {
			rs.cpuJob = app.StartFrame(inter, b.rngs[r])
		}
		rs.cpuRemaining = rs.cpuJob.CPUWork
		rs.cpuActive = true
	}

	if rs.cpuActive && b.bigIdx >= 0 {
		cores := rs.cpuJob.Parallelism
		if limit := b.bigCoresF; cores > limit {
			cores = limit
		}
		drain := b.bigDrainPC[r] * cores * dtSec
		used := drain
		if used > rs.cpuRemaining {
			used = rs.cpuRemaining
		}
		rs.cpuRemaining -= used
		b.noteRender(b.bigIdx, r, used)
		if rs.cpuRemaining <= 0 {
			rs.cpuActive = false
			if !rs.gpuActive && !rs.gpuDone {
				rs.gpuRemaining = rs.cpuJob.GPUWork
				rs.gpuActive = true
			} else {
				rs.cpuActive = true
				rs.cpuRemaining = 0
			}
		}
	}

	if rs.cpuActive && rs.cpuRemaining <= 0 && !rs.gpuActive && !rs.gpuDone {
		rs.gpuRemaining = rs.cpuJob.GPUWork
		rs.gpuActive = true
		rs.cpuActive = false
	}

	if rs.gpuActive && b.gpuIdx >= 0 {
		drain := b.gpuDrainCur[r]
		used := drain
		if used > rs.gpuRemaining {
			used = rs.gpuRemaining
		}
		rs.gpuRemaining -= used
		b.noteRender(b.gpuIdx, r, used)
		if rs.gpuRemaining <= 0 {
			rs.gpuActive = false
			rs.gpuDone = true
		}
	}

	if rs.gpuDone {
		if d.OfferFrame() {
			rs.gpuDone = false
		}
	}

	return rs.cpuActive || rs.gpuActive || rs.gpuDone
}

// noteRender charges render cycles to cluster i of lane r.
func (b *BatchEngine) noteRender(i, r int, used float64) {
	if i < 0 {
		return
	}
	idx := i*b.k + r
	b.tickRender[idx] += used
	b.busyCycles[idx] += used
}

// integratePower is the batched tick power integration: cluster-outer,
// lane-inner, so each cluster's capacity table, power table, thermal
// node index and background routing load once and then sweep k
// contiguous lanes. Per lane the terms and their order are exactly the
// scalar integratePower's. Fills b.tickPower and the node-major
// b.powerBuf for the thermal step.
func (b *BatchEngine) integratePower(screenOff bool) {
	k := b.k
	total := b.tickPower[:k:k]
	baseW := b.baseW[:k:k]
	offFrac := b.offFrac[:k:k]
	for r := range total {
		bw := baseW[r]
		if screenOff {
			bw *= offFrac[r]
		}
		total[r] = bw
	}
	for _, row := range b.zeroRows {
		z := b.powerBuf[row*k:][:k:k]
		for r := range z {
			z[r] = 0
		}
	}
	if b.skinIdx >= 0 {
		skin := b.powerBuf[b.skinIdx*k:][:k:k]
		skinFrac := b.skinFrac[:k:k]
		for r := range total {
			skin[r] = total[r] * skinFrac[r]
		}
	}
	if b.needAmb {
		amb := b.therm.AmbientC
		ambT := b.ambBuf[:k:k]
		for r := range ambT {
			ambT[r] = amb
		}
	}

	if useAVX2 && k >= 4 && k%4 == 0 {
		for i := range b.ip {
			ipLanesAVX2(&b.ip[i], total, int64(k))
		}
		return
	}
	for i := range b.ip {
		a := &b.ip[i]
		ipLanes(a.dem, a.capCur, a.render, a.busyW, a.curW, a.maxW, a.lastU,
			a.dynCur, a.leakCur, a.nodeT, a.sink, total, a.capMax, a.tempCo, a.idleW)
	}
}

// ipLanes is one cluster's power integration across the lane rows — the
// portable reference for ipLanesAVX2, which computes the identical IEEE
// operation sequence four lanes at a time (each lane occupies one SIMD
// slot, so per-lane results are bit-identical; TestIPLanesAVX2MatchesGo
// pins the pairing).
func ipLanes(dem, capCur, render, busyW, curW, maxW, lastU, dynCur, leakCur, nodeT, sink, total []float64, capMax, tempCo, idleW float64) {
	for r := range total {
		bg := dem[r]
		capC := capCur[r]
		avail := capC - render[r]
		if avail < 0 {
			avail = 0
		}
		bgCycles := bg * capMax
		if bgCycles > avail {
			bgCycles = avail
		}
		busy := busyW[r] + bgCycles
		busyW[r] = busy
		curCap := curW[r] + capC
		curW[r] = curCap
		maxW[r] += capMax

		util := 0.0
		if curCap > 0 {
			util = busy / curCap
		}
		if util > 1 {
			util = 1
		}
		lastU[r] = util

		// power.Table.Power inlined over the mirrored row: util is
		// already in [0,1] here, so the clamps reduce to the leakage
		// floor; the term order matches Power exactly.
		dyn := dynCur[r] * util
		leak := leakCur[r] * (1 + tempCo*(nodeT[r]-25))
		if leak < 0 {
			leak = 0
		}
		w := dyn + leak + idleW
		total[r] += w
		sink[r] += w
	}
}

// decideGovernor hands lane r's governor its observations and resets
// that lane's utilization windows.
func (b *BatchEngine) decideGovernor(r int, nowUS int64) {
	k := b.k
	obs := b.obsBufs[r]
	for i := 0; i < b.nc; i++ {
		idx := i*k + r
		c := b.clusters[idx]
		util, norm := 0.0, 0.0
		if b.curCapCycles[idx] > 0 {
			util = b.busyCycles[idx] / b.curCapCycles[idx]
		}
		if b.maxCapCycles[idx] > 0 {
			norm = b.busyCycles[idx] / b.maxCapCycles[idx]
		}
		if util > 1 {
			util = 1
		}
		if norm > 1 {
			norm = 1
		}
		norm = b.utilEWMA[idx].Push(norm)
		b.lastUtil[idx] = util
		obs[i] = governor.Observation{Cluster: c, Util: util, NormUtil: norm}
		b.busyCycles[idx] = 0
		b.curCapCycles[idx] = 0
		b.maxCapCycles[idx] = 0
	}
	b.govs[r].Decide(nowUS, obs)
}

// snapshot builds lane r's controller view into that lane's scratch.
func (b *BatchEngine) snapshot(r int, nowUS int64, fps float64, app workload.App, tempBig, tempDev float64) ctrl.Snapshot {
	k := b.k
	views := b.views[r]
	for i := 0; i < b.nc; i++ {
		idx := i*k + r
		c := b.clusters[idx]
		views[i] = ctrl.ClusterView{
			Name:     c.Name,
			IsGPU:    c.Kind == soc.KindGPU,
			NumOPPs:  c.NumOPPs(),
			CurIdx:   c.Cur(),
			CapIdx:   c.Cap(),
			FloorIdx: c.Floor(),
			FreqKHz:  c.FreqKHz(),
			OPPKHz:   b.opps[i],
			Util:     b.lastUtil[idx],
			NormUtil: b.utilEWMA[idx].Value(),
		}
	}
	b.snapScratch[r] = ctrl.Snapshot{
		NowUS:        nowUS,
		FPS:          fps,
		PowerW:       b.lastPowerW[r],
		TempBigC:     tempBig,
		TempDeviceC:  tempDev,
		AmbientC:     b.therm.AmbientC,
		AppName:      app.Name(),
		AppClassGame: app.Class() == workload.ClassGame,
		Clusters:     views,
	}
	if f := b.cfgs[r].SnapshotFault; f != nil {
		f(&b.snapScratch[r])
	}
	return b.snapScratch[r]
}

func (b *BatchEngine) sample(r int, nowUS int64, app workload.App, inter workload.Interaction, fps, powerW, tb, td float64) Sample {
	s := Sample{
		TimeUS:      nowUS,
		App:         app.Name(),
		Interaction: inter.String(),
		FPS:         fps,
		PowerW:      powerW,
		TempBigC:    tb,
		TempDevC:    td,
	}
	k := b.k
	ints := b.sampleInts[r]
	base := len(ints)
	for i := 0; i < b.nc; i++ {
		ints = append(ints, b.clusters[i*k+r].FreqKHz())
	}
	mid := len(ints)
	for i := 0; i < b.nc; i++ {
		ints = append(ints, b.clusters[i*k+r].Cap())
	}
	end := len(ints)
	b.sampleInts[r] = ints
	s.FreqKHz = ints[base:mid:mid]
	s.CapIdx = ints[mid:end:end]
	utils := b.sampleUtils[r]
	ub := len(utils)
	for i := 0; i < b.nc; i++ {
		utils = append(utils, b.lastUtil[i*k+r])
	}
	b.sampleUtils[r] = utils
	s.Util = utils[ub:len(utils):len(utils)]
	return s
}
