package sim

import (
	"unsafe"

	"nextdvfs/internal/cpufeat"
)

// useAVX2 gates the batched engine's vector kernels. The kernels run
// the exact IEEE-754 operation sequence of their portable Go
// counterparts with each lane in one SIMD slot — per-lane results are
// bit-identical, only the lanes advance four at a time. They require
// the lane count to be a multiple of four; other widths take the Go
// path.
var useAVX2 = cpufeat.HasAVX2

// ipLanesAVX2 is ipLanes four lanes at a time, reading its eleven row
// operands and three constants straight out of the precomputed ipArgs
// (one 8-byte pointer instead of eleven slice headers per call). All
// rows hold k elements; k must be a positive multiple of 4.
//
//go:noescape
func ipLanesAVX2(a *ipArgs, total []float64, k int64)

// The assembly addresses ipArgs fields by hard-coded offset; refuse to
// start if the struct layout ever drifts from what the kernel assumes.
func init() {
	var a ipArgs
	if unsafe.Offsetof(a.dem) != 0 || unsafe.Offsetof(a.capCur) != 24 ||
		unsafe.Offsetof(a.render) != 48 || unsafe.Offsetof(a.busyW) != 72 ||
		unsafe.Offsetof(a.curW) != 96 || unsafe.Offsetof(a.maxW) != 120 ||
		unsafe.Offsetof(a.lastU) != 144 || unsafe.Offsetof(a.dynCur) != 168 ||
		unsafe.Offsetof(a.leakCur) != 192 || unsafe.Offsetof(a.nodeT) != 216 ||
		unsafe.Offsetof(a.sink) != 240 || unsafe.Offsetof(a.capMax) != 264 ||
		unsafe.Offsetof(a.tempCo) != 272 || unsafe.Offsetof(a.idleW) != 280 {
		panic("sim: ipArgs layout drifted from ipLanesAVX2's field offsets")
	}
}
