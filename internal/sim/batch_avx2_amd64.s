#include "textflag.h"

// Float constants for the kernel: 1.0 and 25.0 (the leakage reference
// temperature), broadcast into YMM registers at entry.
DATA ipOne<>+0(SB)/8, $1.0
GLOBL ipOne<>(SB), RODATA, $8
DATA ipTwentyFive<>+0(SB)/8, $25.0
GLOBL ipTwentyFive<>(SB), RODATA, $8

// func ipLanesAVX2(a *ipArgs, total []float64, k int64)
//
// One cluster's power integration across k lanes, four per iteration.
// The eleven row pointers and three broadcast constants load from the
// ipArgs struct by fixed offset (pinned by the init check in
// batch_avx2_amd64.go), so a call copies one pointer instead of eleven
// slice headers.
// Per lane this is instruction-for-instruction the IEEE sequence of
// ipLanes: sub, max-with-zero, mul, min, three accumulating adds, div,
// compare-mask, min-with-one, then the inlined Table.Power terms. The
// clamp tie semantics match Go's strict comparisons: VMAXPD/VMINPD with
// the variable as the second source return the variable on ties, which
// is exactly `if x < 0 { x = 0 }` / `if x > 1 { x = 1 }`. Division by a
// non-positive accumulated capacity yields Inf/NaN that the compare
// mask immediately zeroes, matching the guarded Go division.
TEXT ·ipLanesAVX2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), AX
	MOVQ 0(AX), SI    // dem
	MOVQ 24(AX), DI   // capCur
	MOVQ 48(AX), R8   // render
	MOVQ 72(AX), R9   // busyW
	MOVQ 96(AX), R10  // curW
	MOVQ 120(AX), R11 // maxW
	MOVQ 144(AX), R12 // lastU
	MOVQ 168(AX), R13 // dynCur
	MOVQ 192(AX), R14 // leakCur
	MOVQ 216(AX), R15 // nodeT
	MOVQ 240(AX), BX  // sink
	MOVQ total_base+8(FP), DX

	VBROADCASTSD 264(AX), Y0 // capMax
	VBROADCASTSD 272(AX), Y1 // tempCo
	VBROADCASTSD 280(AX), Y2 // idleW
	MOVQ k+32(FP), AX
	VBROADCASTSD ipOne<>(SB), Y3
	VBROADCASTSD ipTwentyFive<>(SB), Y4
	VXORPD Y5, Y5, Y5

	XORQ CX, CX

iploop:
	VMOVUPD (DI)(CX*8), Y6     // capC
	VMOVUPD (R8)(CX*8), Y7
	VSUBPD  Y7, Y6, Y7         // avail = capC - render
	VMAXPD  Y7, Y5, Y7         // if avail < 0 { avail = 0 }
	VMOVUPD (SI)(CX*8), Y8
	VMULPD  Y0, Y8, Y8         // bgCycles = bg * capMax
	VMINPD  Y8, Y7, Y8         // if bgCycles > avail { bgCycles = avail }
	VMOVUPD (R9)(CX*8), Y9
	VADDPD  Y8, Y9, Y9         // busy = busyW + bgCycles
	VMOVUPD Y9, (R9)(CX*8)
	VMOVUPD (R10)(CX*8), Y10
	VADDPD  Y6, Y10, Y10       // curCap = curW + capC
	VMOVUPD Y10, (R10)(CX*8)
	VMOVUPD (R11)(CX*8), Y11
	VADDPD  Y0, Y11, Y11       // maxW += capMax
	VMOVUPD Y11, (R11)(CX*8)

	VDIVPD  Y10, Y9, Y12       // busy / curCap
	VCMPPD  $0x1e, Y5, Y10, Y13 // curCap > 0 (GT_OQ)
	VANDPD  Y13, Y12, Y12      // util = 0 where curCap <= 0
	VMINPD  Y12, Y3, Y12       // if util > 1 { util = 1 }
	VMOVUPD Y12, (R12)(CX*8)   // lastU

	VMOVUPD (R13)(CX*8), Y14
	VMULPD  Y12, Y14, Y14      // dyn = dynCur * util
	VMOVUPD (R15)(CX*8), Y15
	VSUBPD  Y4, Y15, Y15       // nodeT - 25
	VMULPD  Y1, Y15, Y15       // tempCo * (nodeT - 25)
	VADDPD  Y3, Y15, Y15       // 1 + ...
	VMOVUPD (R14)(CX*8), Y6
	VMULPD  Y15, Y6, Y6        // leak = leakCur * (1 + ...)
	VMAXPD  Y6, Y5, Y6         // if leak < 0 { leak = 0 }
	VADDPD  Y6, Y14, Y14       // w = dyn + leak
	VADDPD  Y2, Y14, Y14       // w += idleW
	VMOVUPD (DX)(CX*8), Y7
	VADDPD  Y14, Y7, Y7        // total += w
	VMOVUPD Y7, (DX)(CX*8)
	VMOVUPD (BX)(CX*8), Y8
	VADDPD  Y14, Y8, Y8        // sink += w
	VMOVUPD Y8, (BX)(CX*8)

	ADDQ $4, CX
	CMPQ CX, AX
	JL   iploop

	VZEROUPPER
	RET
