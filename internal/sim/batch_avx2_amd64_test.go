package sim

import (
	"math"
	"math/rand"
	"testing"
)

// The vector kernel must be bit-identical to the portable lane loop —
// same IEEE operation sequence per lane, one lane per SIMD slot. The
// states here exercise the clamp ties (render exceeding capacity,
// zero accumulated capacity, negative leakage terms, zero background)
// that the masked/min-max encodings must get exactly right.
func TestIPLanesAVX2MatchesGo(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable")
	}
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{4, 8, 16} {
		for trial := 0; trial < 200; trial++ {
			mk := func(scale float64) []float64 {
				s := make([]float64, k)
				for i := range s {
					s[i] = scale * rng.Float64()
				}
				return s
			}
			dem := mk(1)
			capCur := mk(2e6)
			render := mk(3e6) // often exceeds capCur: avail clamp hits
			busyW := mk(1e7)
			curW := mk(1e7)
			maxW := mk(1e7)
			lastU := mk(1)
			dynCur := mk(3)
			leakCur := mk(0.5)
			nodeT := mk(90)
			sink := mk(5)
			total := mk(5)
			switch trial % 4 {
			case 1: // zero accumulated capacity: the guarded division
				for i := range curW {
					curW[i], capCur[i] = 0, 0
				}
			case 2: // ties: bgCycles == avail, util == 1 paths
				for i := range render {
					render[i] = 0
					dem[i] = 1
					busyW[i], curW[i] = 0, 0
				}
			case 3: // strongly negative leakage temperature term
				for i := range nodeT {
					nodeT[i] = -60
				}
			}
			capMax, tempCo, idleW := 2.2e6, 0.04, 0.12
			if trial%3 == 0 {
				tempCo = -0.9 // drives leak < 0: the leakage floor
			}

			type state struct{ busyW, curW, maxW, lastU, sink, total []float64 }
			clone := func() state {
				return state{
					busyW: append([]float64(nil), busyW...),
					curW:  append([]float64(nil), curW...),
					maxW:  append([]float64(nil), maxW...),
					lastU: append([]float64(nil), lastU...),
					sink:  append([]float64(nil), sink...),
					total: append([]float64(nil), total...),
				}
			}
			g, v := clone(), clone()
			ipLanes(dem, capCur, render, g.busyW, g.curW, g.maxW, g.lastU, dynCur, leakCur, nodeT, g.sink, g.total, capMax, tempCo, idleW)
			args := ipArgs{
				dem: dem, capCur: capCur, render: render,
				busyW: v.busyW, curW: v.curW, maxW: v.maxW, lastU: v.lastU,
				dynCur: dynCur, leakCur: leakCur, nodeT: nodeT, sink: v.sink,
				capMax: capMax, tempCo: tempCo, idleW: idleW,
			}
			ipLanesAVX2(&args, v.total, int64(k))

			cmp := func(name string, a, b []float64) {
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("k=%d trial=%d %s[%d]: go %v (%#x) != avx2 %v (%#x)",
							k, trial, name, i, a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
					}
				}
			}
			cmp("busyW", g.busyW, v.busyW)
			cmp("curW", g.curW, v.curW)
			cmp("maxW", g.maxW, v.maxW)
			cmp("lastU", g.lastU, v.lastU)
			cmp("sink", g.sink, v.sink)
			cmp("total", g.total, v.total)
		}
	}
}
