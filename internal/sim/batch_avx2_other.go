//go:build !amd64

package sim

// Off amd64 the vector kernels do not exist; useAVX2 is false and every
// call site takes the portable Go path. The stub keeps the package
// compiling on 386/arm64 crossbuilds.
var useAVX2 = false

func ipLanesAVX2(a *ipArgs, total []float64, k int64) {
	panic("sim: ipLanesAVX2 unavailable on this architecture")
}
