package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

// sweepConfig assembles one lane of a lockstep seed sweep: the scenario
// is compiled at a fixed structural seed (identical phase structure and
// schedules in every lane, fresh app instances) while the engine seed
// varies per lane — the contract exp.SeedSweep and the batched bench
// path rely on.
func sweepConfig(t *testing.T, scn scenario.Scenario, plat platform.Platform, structSeed, engineSeed int64) sim.Config {
	t.Helper()
	compiled, err := scenario.Compile(scn, structSeed, plat.AmbientC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plat.Config(compiled.Timeline, engineSeed)
	cfg.Ambient = compiled.Ambient
	cfg.Refresh = compiled.Refresh
	return cfg
}

// TestBatchMatchesScalarEngine is the tentpole differential pin: for
// every registered platform × scenario preset, a k-lane BatchEngine
// must reproduce k independent scalar Engine runs byte-for-byte
// (reflect.DeepEqual over the full Result including every trace
// sample). Scenarios are scaled to 2% so the full matrix stays fast
// while still crossing app switches, ambient moves and refresh
// switches.
func TestBatchMatchesScalarEngine(t *testing.T) {
	const (
		k          = 3
		structSeed = 42
	)
	for _, pname := range platform.Names() {
		plat := platform.MustGet(pname)
		for _, sname := range scenario.Names() {
			t.Run(pname+"/"+sname, func(t *testing.T) {
				scn := scenario.Scaled(scenario.MustGet(sname), 0.02)

				want := make([]sim.Result, k)
				for r := 0; r < k; r++ {
					e, err := sim.New(sweepConfig(t, scn, plat, structSeed, int64(100+r)))
					if err != nil {
						t.Fatal(err)
					}
					want[r] = e.Run()
				}

				cfgs := make([]sim.Config, k)
				for r := 0; r < k; r++ {
					cfgs[r] = sweepConfig(t, scn, plat, structSeed, int64(100+r))
				}
				b, err := sim.NewBatch(cfgs)
				if err != nil {
					t.Fatalf("NewBatch: %v", err)
				}
				got := b.Run()
				if len(got) != k {
					t.Fatalf("batch returned %d results, want %d", len(got), k)
				}
				for r := 0; r < k; r++ {
					if !reflect.DeepEqual(want[r], got[r]) {
						t.Errorf("lane %d diverged from scalar run\nscalar: %s\nbatch:  %s",
							r, summarize(want[r]), summarize(got[r]))
					}
				}
			})
		}
	}
}

func summarize(r sim.Result) string {
	return fmt.Sprintf("{power %.9f peak %.9f energy %.9f tempBig %.9f tempDev %.9f fps %.9f active %.9f frames %d drops %d vsyncs %d samples %d}",
		r.AvgPowerW, r.PeakPowerW, r.EnergyJ, r.AvgTempBigC, r.AvgTempDevC, r.AvgFPS, r.ActiveAvgFPS,
		r.FramesDisplayed, r.FramesDropped, r.VSyncs, len(r.Samples))
}
