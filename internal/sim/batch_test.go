package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// batchTimeline builds a fresh watch/idle/scroll timeline with its own
// app instance — lanes of a batch must never share mutable subsystems,
// so every lane (and every scalar reference) compiles its own copy.
func batchTimeline(secs float64) *session.Timeline {
	third := session.Seconds(secs / 3)
	return &session.Timeline{Scripts: []session.Script{{
		App: workload.YouTube(),
		Phases: []session.Phase{
			{Inter: workload.InterWatch, DurUS: third},
			{Inter: workload.InterIdle, DurUS: third},
			{Inter: workload.InterScroll, DurUS: third},
		},
	}}}
}

// batchGameTimeline is gameTimeline with the structural draw fixed by
// structSeed: equal structSeeds give byte-identical phase structure
// with independent app instances, which is exactly the lockstep
// contract for seed sweeps.
func batchGameTimeline(structSeed int64, secs float64) *session.Timeline {
	rng := rand.New(rand.NewSource(structSeed))
	return &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.Lineage(), session.Seconds(secs), rng),
	}}
}

func TestBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Fatal("empty batch must fail")
	}

	mk := func(seed int64) Config { return Note9Config(batchTimeline(6), seed) }

	t.Run("tick mismatch", func(t *testing.T) {
		a, b := mk(1), mk(2)
		b.TickUS = 2000
		if _, err := NewBatch([]Config{a, b}); err == nil {
			t.Fatal("differing TickUS must fail")
		}
	})
	t.Run("panel mismatch", func(t *testing.T) {
		a, b := mk(1), mk(2)
		b.Display.SetRefresh(120, 0)
		if _, err := NewBatch([]Config{a, b}); err == nil {
			t.Fatal("differing panel rate must fail")
		}
	})
	t.Run("timeline shape mismatch", func(t *testing.T) {
		a, b := mk(1), mk(2)
		b.Timeline.Scripts[0].Phases = b.Timeline.Scripts[0].Phases[:2]
		if _, err := NewBatch([]Config{a, b}); err == nil {
			t.Fatal("differing phase structure must fail")
		}
	})
	t.Run("shared timeline", func(t *testing.T) {
		a, b := mk(1), mk(2)
		b.Timeline = a.Timeline
		if _, err := NewBatch([]Config{a, b}); err == nil {
			t.Fatal("lanes sharing app instances must fail")
		}
	})
	t.Run("shared chip", func(t *testing.T) {
		a, b := mk(1), mk(2)
		b.Chip = a.Chip
		if _, err := NewBatch([]Config{a, b}); err == nil {
			t.Fatal("lanes sharing a chip must fail")
		}
	})
	t.Run("seed sweep is compatible", func(t *testing.T) {
		if _, err := NewBatch([]Config{mk(1), mk(2), mk(3)}); err != nil {
			t.Fatalf("seed-only sweep rejected: %v", err)
		}
	})
}

func TestBatchSingleLaneMatchesScalar(t *testing.T) {
	mk := func() Config { return Note9Config(batchTimeline(8), 7) }

	e, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	want := e.Run()

	b, err := NewBatch([]Config{mk()})
	if err != nil {
		t.Fatal(err)
	}
	got := b.Run()
	if len(got) != 1 {
		t.Fatalf("k=1 batch returned %d results", len(got))
	}
	if !reflect.DeepEqual(want, got[0]) {
		t.Fatalf("k=1 batch diverged from scalar:\nscalar %+v\nbatch  %+v", want, got[0])
	}
}

// TestBatchMixedLanesMatchScalar pins the per-lane freedoms: lanes with
// different seeds, schemes (bare governor vs controller), record
// cadences and fault hooks must each reproduce their scalar run
// byte-for-byte — including across a second Run, which continues each
// lane's rng stream exactly like a scalar engine does.
func TestBatchMixedLanesMatchScalar(t *testing.T) {
	const structSeed = 11
	mutations := []func(*Config){
		func(c *Config) { c.Seed = 1 },
		func(c *Config) { c.Seed = 2 },
		func(c *Config) {
			c.Seed = 3
			c.Controller = &fixedCapController{cluster: "big", idx: 4}
			c.RecordIntervalUS = 250_000
		},
		func(c *Config) {
			c.Seed = 1 // same seed as lane 0, different scheme
			c.Controller = &fixedCapController{cluster: "gpu", idx: 2}
			c.SnapshotFault = func(s *ctrlSnapshotAlias) { s.FPS = 0 }
		},
	}
	mk := func(mut func(*Config)) Config {
		cfg := Note9Config(batchGameTimeline(structSeed, 10), 0)
		mut(&cfg)
		return cfg
	}

	k := len(mutations)
	want := make([][]Result, k)
	for r, mut := range mutations {
		e, err := New(mk(mut))
		if err != nil {
			t.Fatal(err)
		}
		want[r] = []Result{e.Run(), e.Run()}
	}

	cfgs := make([]Config, k)
	for r, mut := range mutations {
		cfgs[r] = mk(mut)
	}
	b, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	first := b.Run()
	second := b.Run()
	for r := 0; r < k; r++ {
		if !reflect.DeepEqual(want[r][0], first[r]) {
			t.Errorf("lane %d first run diverged from scalar", r)
		}
		if !reflect.DeepEqual(want[r][1], second[r]) {
			t.Errorf("lane %d second run diverged from scalar", r)
		}
	}
}
