package sim

import (
	"fmt"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/display"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/power"
	"nextdvfs/internal/session"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/thermal"
)

// Config assembles one simulation run.
type Config struct {
	Chip     *soc.Chip
	Power    *power.Model
	Thermal  *thermal.Model
	DevSense *thermal.VirtualSensor
	Display  *display.Pipeline
	Timeline *session.Timeline
	Governor governor.Governor
	// Controller is the optional management layer (Next, Int. QoS PM).
	Controller ctrl.Controller
	// TickUS is the integration step (default 1000 µs).
	TickUS int64
	// Seed drives all stochastic draws in the run.
	Seed int64
	// RecordIntervalUS is the trace sampling period (default 1 s;
	// set smaller for figure-resolution traces).
	RecordIntervalUS int64
	// SkinPowerFrac is the share of the base (display/rest-of-device)
	// power deposited into the skin thermal node.
	SkinPowerFrac float64
	// Ambient optionally drives the thermal model's ambient temperature
	// over the run (scenario phases that move between environments). Nil
	// keeps the model's fixed ambient.
	Ambient *thermal.AmbientSchedule
	// Refresh optionally switches the panel rate mid-run (adaptive
	// refresh; scenario phases that change panel mode). Nil keeps the
	// pipeline's native rate.
	Refresh *display.RefreshSchedule
	// ScreenOffBaseFrac is the fraction of Power.BaseW still drawn while
	// the screen is off (workload.InterOff phases): the display is the
	// bulk of base power on a handset. Default 0.25.
	ScreenOffBaseFrac float64
	// SnapshotFault optionally corrupts controller observations before
	// delivery — the failure-injection hook (sensor dropout, FPS jitter).
	SnapshotFault func(*ctrl.Snapshot)
}

// Validate reports missing mandatory pieces.
func (c *Config) Validate() error {
	switch {
	case c.Chip == nil:
		return fmt.Errorf("sim: config needs a chip")
	case c.Power == nil:
		return fmt.Errorf("sim: config needs a power model")
	case c.Thermal == nil:
		return fmt.Errorf("sim: config needs a thermal model")
	case c.Display == nil:
		return fmt.Errorf("sim: config needs a display pipeline")
	case c.Timeline == nil:
		return fmt.Errorf("sim: config needs a timeline")
	case c.Governor == nil:
		return fmt.Errorf("sim: config needs a governor")
	}
	if err := c.Timeline.Validate(); err != nil {
		return err
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.TickUS <= 0 {
		c.TickUS = 1000
	}
	if c.RecordIntervalUS <= 0 {
		c.RecordIntervalUS = 1_000_000
	}
	if c.SkinPowerFrac <= 0 {
		c.SkinPowerFrac = 0.7
	}
	if c.ScreenOffBaseFrac <= 0 {
		c.ScreenOffBaseFrac = 0.25
	}
	if c.DevSense == nil {
		c.DevSense = thermal.Note9DeviceSensor(c.Thermal)
	}
}

// Note9Config returns a ready-to-run Galaxy Note 9 configuration at the
// paper's 21 °C ambient: Exynos 9810, calibrated power/thermal models, a
// 60 Hz panel and the stock schedutil governor. Callers supply the
// timeline and optionally swap the governor/controller.
func Note9Config(tl *session.Timeline, seed int64) Config {
	th := thermal.Note9(21)
	return Config{
		Chip:     soc.Exynos9810(),
		Power:    power.Exynos9810Model(),
		Thermal:  th,
		DevSense: thermal.Note9DeviceSensor(th),
		Display:  display.NewPipeline(60),
		Timeline: tl,
		Governor: governor.NewSchedutil(governor.DefaultSchedutilConfig()),
		Seed:     seed,
	}
}
