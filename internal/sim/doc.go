// Package sim is the discrete-time simulation engine that wires the
// substrates together: the SoC's DVFS clusters, the power and thermal
// models, the VSync display pipeline, an application workload driven by
// a user-interaction timeline, a frequency governor and (optionally) a
// management controller such as the Next agent or Int. QoS PM.
//
// Time advances in fixed ticks (default 1 ms) expressed in microseconds.
// Each tick:
//
//  1. the session cursor resolves the active app and interaction;
//  2. the app produces its demand (frame pending? background load?);
//  3. the two-stage frame renderer drains CPU then GPU work and offers
//     completed frames to the display pipeline (back-pressure applies);
//  4. per-cluster utilization, power and temperatures integrate;
//  5. VSync events flip or drop frames;
//  6. on their own cadences, the governor picks OPPs from utilization
//     and the controller observes (25 ms for Next) and acts (100 ms).
//
// All stochastic draws flow from one seeded source, so runs are
// reproducible bit-for-bit.
package sim
