package sim

import (
	"math/rand"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/power"
	"nextdvfs/internal/session"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/stats"
	"nextdvfs/internal/thermal"
	"nextdvfs/internal/workload"
)

// Engine executes one configured simulation. Create with New, run with
// Run. Engines are single-goroutine; build one per concurrent run.
type Engine struct {
	cfg Config
	rng *rand.Rand

	// renderer state: a two-stage CPU→GPU frame pipeline.
	cpuRemaining float64
	cpuJob       workload.FrameJob
	cpuActive    bool
	gpuRemaining float64
	gpuActive    bool
	gpuDone      bool // frame finished GPU but waiting for a back buffer

	// per-cluster integration state.
	big, little, gpu *soc.Cluster
	busyCycles       []float64 // since last governor decision
	curCapCycles     []float64
	maxCapCycles     []float64
	utilEWMA         []stats.EWMA
	lastUtil         []float64

	// thermal wiring.
	nodeIdx  []int // cluster i -> thermal node index (-1 if absent)
	skinIdx  int
	bigTempI int // thermal node index of NodeBig (-1: resolve by name)
	powerBuf []float64

	// Precomputed hot-path tables, all built once in New so the tick
	// loop is indexed lookups with no map access and no allocation. The
	// folded products keep the original evaluation order, so every
	// number the loop produces is bit-identical to the unfolded math.
	powTbl     []*power.Table        // cluster i -> per-OPP power lookup
	capPerTick [][]float64           // cluster i, OPP k -> cycles/tick at full util
	maxCapTick []float64             // cluster i -> cycles/tick at the top OPP
	bigPerCore []float64             // big-stage OPP k -> cycles/sec of one core
	gpuDrain   []float64             // GPU-stage OPP k -> render cycles/tick
	bigIdx     int                   // chip index of the render CPU stage (-1 if none)
	gpuIdx     int                   // chip index of the render GPU stage (-1 if none)
	booster    governor.InputBooster // non-nil when the governor boosts on input
	obsBuf     []governor.Observation
	cursor     *session.Cursor

	// Per-run bulk sample storage: one allocation per run instead of
	// three per recorded sample (the slices handed out in Result alias
	// into these, so they are re-made each Run, never recycled).
	sampleInts  []int
	sampleUtils []float64

	// per-tick render-thread cycles per cluster (chip order), consumed
	// by integratePower so background work only gets the leftovers —
	// Android UI/render threads outrank background work.
	tickRender []float64

	// cadence bookkeeping.
	nextGovUS   int64
	nextObsUS   int64
	nextCtlUS   int64
	nextRecUS   int64
	lastPowerW  float64
	ctlPowerSum float64 // power integrated since the last Control
	ctlPowerN   int
	screenOff   bool // current tick's screen state (workload.InterOff)
	nativeHz    int  // the panel's built-in rate, restored before each run

	views []ctrl.ClusterView
	opps  [][]int
	// snapScratch is the reusable controller snapshot (see snapshot()).
	snapScratch ctrl.Snapshot
}

// New builds an engine; the config is validated and defaulted.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	e := &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}

	n := len(cfg.Chip.Clusters)
	e.busyCycles = make([]float64, n)
	e.curCapCycles = make([]float64, n)
	e.maxCapCycles = make([]float64, n)
	e.utilEWMA = make([]stats.EWMA, n)
	e.lastUtil = make([]float64, n)
	for i := range e.utilEWMA {
		e.utilEWMA[i].Alpha = 0.5
	}
	e.views = make([]ctrl.ClusterView, n)
	e.opps = make([][]int, n)
	e.nodeIdx = make([]int, n)
	for i, c := range cfg.Chip.Clusters {
		khz := make([]int, c.NumOPPs())
		for k := range khz {
			khz[k] = c.OPPAt(k).FreqKHz
		}
		e.opps[i] = khz
		if idx, ok := cfg.Thermal.Index(c.Name); ok {
			e.nodeIdx[i] = idx
		} else {
			e.nodeIdx[i] = -1
		}
		switch c.Name {
		case soc.ClusterBig:
			e.big = c
		case soc.ClusterLITTLE:
			e.little = c
		case soc.ClusterGPU:
			e.gpu = c
		}
	}
	if e.big == nil || e.gpu == nil {
		// The renderer needs a big CPU stage and a GPU stage; fall back
		// to the first CPU/GPU clusters by kind.
		for _, c := range cfg.Chip.Clusters {
			if e.big == nil && c.Kind == soc.KindCPU {
				e.big = c
			}
			if e.gpu == nil && c.Kind == soc.KindGPU {
				e.gpu = c
			}
		}
	}
	if skin, ok := cfg.Thermal.Index(thermal.NodeSkin); ok {
		e.skinIdx = skin
	} else {
		e.skinIdx = -1
	}
	if big, ok := cfg.Thermal.Index(thermal.NodeBig); ok {
		e.bigTempI = big
	} else {
		e.bigTempI = -1
	}
	e.powerBuf = make([]float64, cfg.Thermal.NumNodes())
	e.tickRender = make([]float64, n)
	e.nativeHz = cfg.Display.RefreshHz

	// Precompute the per-OPP tables the tick loop indexes into. Every
	// folded product preserves the association order of the expressions
	// it replaces, so the loop's arithmetic is bit-identical.
	dtSec := float64(e.cfg.TickUS) / 1e6
	e.powTbl = make([]*power.Table, n)
	e.capPerTick = make([][]float64, n)
	e.maxCapTick = make([]float64, n)
	e.bigIdx, e.gpuIdx = -1, -1
	for i, c := range cfg.Chip.Clusters {
		e.powTbl[i] = cfg.Power.Table(c)
		caps := make([]float64, c.NumOPPs())
		for k := range caps {
			caps[k] = float64(c.OPPAt(k).FreqKHz) * 1e3 * c.IPC * float64(c.Cores) * dtSec
		}
		e.capPerTick[i] = caps
		e.maxCapTick[i] = caps[len(caps)-1]
		if c == e.big {
			e.bigIdx = i
		}
		if c == e.gpu {
			e.gpuIdx = i
		}
	}
	if e.big != nil {
		e.bigPerCore = make([]float64, e.big.NumOPPs())
		for k := range e.bigPerCore {
			e.bigPerCore[k] = float64(e.big.OPPAt(k).FreqKHz) * 1e3 * e.big.IPC
		}
	}
	if e.gpu != nil {
		e.gpuDrain = make([]float64, e.gpu.NumOPPs())
		for k := range e.gpuDrain {
			e.gpuDrain[k] = float64(e.gpu.OPPAt(k).FreqKHz) * 1e3 * e.gpu.IPC * float64(e.gpu.Cores) * dtSec
		}
	}
	e.booster, _ = cfg.Governor.(governor.InputBooster)
	e.obsBuf = make([]governor.Observation, n)
	e.cursor = session.NewCursor(cfg.Timeline)
	return e, nil
}

// Run executes the configured session and returns its Result.
func (e *Engine) Run() Result {
	cfg := &e.cfg
	cfg.Chip.ResetDVFS()
	if cfg.Ambient != nil {
		// The run starts in whatever environment the schedule opens with:
		// ambient (and the node temperatures Reset restores) must match.
		cfg.Ambient.Start()
		cfg.Thermal.AmbientC = cfg.Ambient.At(0)
	}
	cfg.Thermal.Reset()
	if cfg.Refresh != nil {
		// Restore the native panel rate a previous run's schedule may have
		// switched away from, then rewind the schedule.
		cfg.Display.SetRefresh(e.nativeHz, 0)
		cfg.Refresh.Start()
	}
	cfg.Display.Reset()
	cfg.Governor.Reset()
	if cfg.Controller != nil {
		cfg.Controller.Reset()
	}
	e.resetRunState()

	cursor := e.cursor
	cursor.Rewind()
	// Bulk per-run sample storage: sized for the record cadence so the
	// tick loop itself never allocates (allocations here are per run,
	// and the Result aliases these buffers, so they must be fresh).
	nc := len(cfg.Chip.Clusters)
	nSamples := int(cfg.Timeline.DurUS()/cfg.RecordIntervalUS) + 2
	e.sampleInts = make([]int, 0, nSamples*nc*2)
	e.sampleUtils = make([]float64, 0, nSamples*nc)
	var acc accumulators
	var meter power.Meter
	var result Result
	result.Scheme = e.schemeName()

	dt := cfg.TickUS
	dtSec := float64(dt) / 1e6
	now := int64(0)

	for {
		now += dt
		app, inter, entered, ok := cursor.At(now)
		if !ok {
			break
		}
		if entered {
			app.Reset()
			e.dropInFlightFrame()
			if cfg.Controller != nil {
				cfg.Controller.AppChanged(app.Name(), app.Class() == workload.ClassGame)
			}
		}

		// Environment schedules (scenario-driven): ambient temperature and
		// panel refresh follow their piecewise-constant steps.
		if cfg.Ambient != nil {
			cfg.Thermal.AmbientC = cfg.Ambient.At(now)
		}
		if cfg.Refresh != nil {
			if hz := cfg.Refresh.At(now); hz > 0 && hz != cfg.Display.RefreshHz {
				cfg.Display.SetRefresh(hz, now)
			}
		}
		e.screenOff = inter == workload.InterOff

		// Input boost fires on every tick of an active gesture, like the
		// stream of input events Android sees. Gameplay counts: a game
		// session is a continuous stream of touchscreen input, which is
		// precisely why stock Android keeps CPU floors boosted through
		// entire matches.
		if inter == workload.InterTouch || inter == workload.InterScroll || inter == workload.InterPlay {
			if e.booster != nil {
				e.booster.OnInput(now)
			}
		}

		demand := app.Tick(now, dt, inter, e.rng)
		rendering := e.advanceRenderer(app, inter, demand, dtSec)

		// Power for this tick, integrating cluster utilization.
		tickPower := e.integratePower(demand)
		e.lastPowerW = tickPower
		e.ctlPowerSum += tickPower
		e.ctlPowerN++
		meter.Accumulate(tickPower, dtSec)
		acc.power.Push(tickPower)

		// Thermal step.
		cfg.Thermal.Step(dtSec, e.powerBuf)
		var tb float64
		if e.bigTempI >= 0 {
			tb = cfg.Thermal.TempC(e.bigTempI)
		} else {
			tb = cfg.Thermal.TempByName(thermal.NodeBig)
		}
		td := cfg.DevSense.ReadC()
		acc.tempBig.Push(tb)
		acc.tempDev.Push(td)

		// Display.
		expecting := rendering || demand.WantFrame
		cfg.Display.Tick(now, expecting)
		fps := cfg.Display.FPS(now)
		acc.fps.Push(fps)
		if expecting {
			acc.activeFPS.Push(fps)
		}

		// Governor cadence.
		if now >= e.nextGovUS {
			e.decideGovernor(now)
			e.nextGovUS = now + cfg.Governor.IntervalUS()
		}

		// Controller cadences.
		if c := cfg.Controller; c != nil {
			if iv := c.ObserveIntervalUS(); iv > 0 && now >= e.nextObsUS {
				snap := e.snapshot(now, fps, app, tb, td)
				c.Observe(snap)
				e.nextObsUS = now + iv
			}
			if iv := c.ControlIntervalUS(); iv > 0 && now >= e.nextCtlUS {
				snap := e.snapshot(now, fps, app, tb, td)
				// Controllers read window-averaged power, like the
				// integrating fuel gauge a real agent samples.
				if e.ctlPowerN > 0 {
					snap.PowerW = e.ctlPowerSum / float64(e.ctlPowerN)
				}
				e.ctlPowerSum, e.ctlPowerN = 0, 0
				c.Control(snap, chipActuator{cfg.Chip})
				e.nextCtlUS = now + iv
			}
		}

		// Trace recording.
		if now >= e.nextRecUS {
			if result.Samples == nil {
				result.Samples = make([]Sample, 0, nSamples)
			}
			result.Samples = append(result.Samples, e.sample(now, app, inter, fps, tickPower, tb, td))
			e.nextRecUS = now + cfg.RecordIntervalUS
		}
	}

	result.DurationS = float64(cfg.Timeline.DurUS()) / 1e6
	result.AvgPowerW = meter.AvgW()
	result.PeakPowerW = acc.power.Max()
	result.EnergyJ = meter.EnergyJ
	result.AvgTempBigC = acc.tempBig.Mean()
	result.PeakTempBigC = acc.tempBig.Max()
	result.AvgTempDevC = acc.tempDev.Mean()
	result.PeakTempDevC = acc.tempDev.Max()
	result.AvgFPS = acc.fps.Mean()
	result.ActiveAvgFPS = acc.activeFPS.Mean()
	result.FramesDisplayed = cfg.Display.Displayed()
	result.FramesDropped = cfg.Display.Dropped()
	result.VSyncs = cfg.Display.VSyncs()
	return result
}

func (e *Engine) schemeName() string {
	if e.cfg.Controller != nil {
		return e.cfg.Controller.Name()
	}
	return e.cfg.Governor.Name()
}

func (e *Engine) resetRunState() {
	e.cpuActive, e.gpuActive, e.gpuDone = false, false, false
	e.cpuRemaining, e.gpuRemaining = 0, 0
	for i := range e.busyCycles {
		e.busyCycles[i] = 0
		e.curCapCycles[i] = 0
		e.maxCapCycles[i] = 0
		e.utilEWMA[i].Reset()
		e.lastUtil[i] = 0
	}
	e.nextGovUS, e.nextObsUS, e.nextCtlUS, e.nextRecUS = 0, 0, 0, 0
	e.lastPowerW = 0
	e.ctlPowerSum, e.ctlPowerN = 0, 0
	e.screenOff = false
}

// dropInFlightFrame abandons any partially rendered frame on app switch.
func (e *Engine) dropInFlightFrame() {
	e.cpuActive, e.gpuActive, e.gpuDone = false, false, false
	e.cpuRemaining, e.gpuRemaining = 0, 0
}

// advanceRenderer drains the CPU and GPU stages by one tick and reports
// whether any stage is busy (a frame is in flight). Render threads run
// at Android UI priority: they take the cores they can use and the
// app's background work gets the leftovers (integratePower clips it).
func (e *Engine) advanceRenderer(app workload.App, inter workload.Interaction, demand workload.Demand, dtSec float64) bool {
	for i := range e.tickRender {
		e.tickRender[i] = 0
	}

	// Start a new frame when the CPU stage is free, the app wants one
	// and the pipeline can eventually take it.
	if !e.cpuActive && demand.WantFrame && e.cfg.Display.BackBufferFree() {
		e.cpuJob = app.StartFrame(inter, e.rng)
		e.cpuRemaining = e.cpuJob.CPUWork
		e.cpuActive = true
	}

	// CPU stage on the big cluster.
	if e.cpuActive && e.big != nil {
		cores := e.cpuJob.Parallelism
		if limit := float64(e.big.Cores); cores > limit {
			cores = limit
		}
		drain := e.bigPerCore[e.big.Cur()] * cores * dtSec
		used := drain
		if used > e.cpuRemaining {
			used = e.cpuRemaining
		}
		e.cpuRemaining -= used
		e.noteRender(e.bigIdx, used)
		if e.cpuRemaining <= 0 {
			e.cpuActive = false
			// Hand to GPU stage (stalls if GPU still busy with previous).
			if !e.gpuActive && !e.gpuDone {
				e.gpuRemaining = e.cpuJob.GPUWork
				e.gpuActive = true
			} else {
				// GPU busy: model the handoff queue of depth 1 by
				// leaving the CPU stage blocked until the GPU frees.
				e.cpuActive = true
				e.cpuRemaining = 0
			}
		}
	}

	// Unblock a finished CPU stage waiting on the GPU.
	if e.cpuActive && e.cpuRemaining <= 0 && !e.gpuActive && !e.gpuDone {
		e.gpuRemaining = e.cpuJob.GPUWork
		e.gpuActive = true
		e.cpuActive = false
	}

	// GPU stage: rendering owns the GPU; decode/composition background
	// shares but yields priority.
	if e.gpuActive && e.gpu != nil {
		drain := e.gpuDrain[e.gpu.Cur()]
		used := drain
		if used > e.gpuRemaining {
			used = e.gpuRemaining
		}
		e.gpuRemaining -= used
		e.noteRender(e.gpuIdx, used)
		if e.gpuRemaining <= 0 {
			e.gpuActive = false
			e.gpuDone = true
		}
	}

	// Offer the completed frame; back-pressure holds it if buffers full.
	if e.gpuDone {
		if e.cfg.Display.OfferFrame() {
			e.gpuDone = false
		}
	}

	return e.cpuActive || e.gpuActive || e.gpuDone
}

// noteRender charges render cycles to cluster i's tick accounting.
func (e *Engine) noteRender(i int, used float64) {
	if i < 0 {
		return
	}
	e.tickRender[i] += used
	e.busyCycles[i] += used
}

// integratePower computes this tick's device power, charges background
// utilization, and fills the thermal power buffer. Returns total watts.
// The per-OPP capacity and power terms come from the tables New built;
// the fixed tick step is already folded in.
func (e *Engine) integratePower(demand workload.Demand) float64 {
	cfg := &e.cfg
	baseW := cfg.Power.BaseW
	if e.screenOff {
		// The panel and its rail dominate base power; screen-off sheds
		// most of it (the remainder is radios, sensors, always-on logic).
		baseW *= cfg.ScreenOffBaseFrac
	}
	total := baseW
	for i := range e.powerBuf {
		e.powerBuf[i] = 0
	}
	if e.skinIdx >= 0 {
		e.powerBuf[e.skinIdx] = baseW * cfg.SkinPowerFrac
	}

	for i, c := range cfg.Chip.Clusters {
		// Background demand is an absolute rate: a fraction of MAX
		// capacity, clipped by what the current clock can deliver.
		bg := 0.0
		switch c {
		case e.big:
			bg = demand.BigBg
		case e.little:
			bg = demand.LittleBg
		case e.gpu:
			bg = demand.GPUBg
		}
		capCur := e.capPerTick[i][c.Cur()]
		capMax := e.maxCapTick[i]
		// Background work takes whatever capacity the render thread
		// left this tick (UI priority wins on Android).
		avail := capCur - e.tickRender[i]
		if avail < 0 {
			avail = 0
		}
		bgCycles := bg * capMax
		if bgCycles > avail {
			bgCycles = avail
		}
		e.busyCycles[i] += bgCycles
		e.curCapCycles[i] += capCur
		e.maxCapCycles[i] += capMax

		// Window-average utilization since the last governor decision;
		// converges within a governor interval and smooths tick noise.
		util := 0.0
		if e.curCapCycles[i] > 0 {
			util = e.busyCycles[i] / e.curCapCycles[i]
		}
		if util > 1 {
			util = 1
		}
		e.lastUtil[i] = util

		nodeTemp := cfg.Thermal.AmbientC
		if e.nodeIdx[i] >= 0 {
			nodeTemp = cfg.Thermal.TempC(e.nodeIdx[i])
		}
		w := e.powTbl[i].Power(c.Cur(), util, nodeTemp)
		total += w
		if e.nodeIdx[i] >= 0 {
			e.powerBuf[e.nodeIdx[i]] += w
		} else if e.skinIdx >= 0 {
			e.powerBuf[e.skinIdx] += w
		}
	}
	return total
}

// decideGovernor hands the governor its per-cluster observations and
// resets the utilization windows.
func (e *Engine) decideGovernor(nowUS int64) {
	// obsBuf is engine scratch: no governor retains the slice past its
	// Decide call (they copy what they need), so reusing it keeps the
	// decision path allocation-free.
	obs := e.obsBuf
	for i, c := range e.cfg.Chip.Clusters {
		util, norm := 0.0, 0.0
		if e.curCapCycles[i] > 0 {
			util = e.busyCycles[i] / e.curCapCycles[i]
		}
		if e.maxCapCycles[i] > 0 {
			norm = e.busyCycles[i] / e.maxCapCycles[i]
		}
		if util > 1 {
			util = 1
		}
		if norm > 1 {
			norm = 1
		}
		norm = e.utilEWMA[i].Push(norm)
		e.lastUtil[i] = util
		obs[i] = governor.Observation{Cluster: c, Util: util, NormUtil: norm}
		e.busyCycles[i] = 0
		e.curCapCycles[i] = 0
		e.maxCapCycles[i] = 0
	}
	e.cfg.Governor.Decide(nowUS, obs)
}

// snapshot builds the controller view of the platform. It assembles
// into the engine's scratch snapshot rather than a local: taking the
// address of a local for the SnapshotFault hook would make every
// snapshot escape to the heap — one allocation per Observe/Control,
// which the controller-path zero-alloc pin forbids.
func (e *Engine) snapshot(nowUS int64, fps float64, app workload.App, tempBig, tempDev float64) ctrl.Snapshot {
	for i, c := range e.cfg.Chip.Clusters {
		e.views[i] = ctrl.ClusterView{
			Name:     c.Name,
			IsGPU:    c.Kind == soc.KindGPU,
			NumOPPs:  c.NumOPPs(),
			CurIdx:   c.Cur(),
			CapIdx:   c.Cap(),
			FloorIdx: c.Floor(),
			FreqKHz:  c.FreqKHz(),
			OPPKHz:   e.opps[i],
			Util:     e.lastUtil[i],
			NormUtil: e.utilEWMA[i].Value(),
		}
	}
	e.snapScratch = ctrl.Snapshot{
		NowUS:        nowUS,
		FPS:          fps,
		PowerW:       e.lastPowerW,
		TempBigC:     tempBig,
		TempDeviceC:  tempDev,
		AmbientC:     e.cfg.Thermal.AmbientC,
		AppName:      app.Name(),
		AppClassGame: app.Class() == workload.ClassGame,
		Clusters:     e.views,
	}
	if e.cfg.SnapshotFault != nil {
		e.cfg.SnapshotFault(&e.snapScratch)
	}
	return e.snapScratch
}

func (e *Engine) sample(nowUS int64, app workload.App, inter workload.Interaction, fps, powerW, tb, td float64) Sample {
	s := Sample{
		TimeUS:      nowUS,
		App:         app.Name(),
		Interaction: inter.String(),
		FPS:         fps,
		PowerW:      powerW,
		TempBigC:    tb,
		TempDevC:    td,
	}
	// Slice the per-sample vectors out of the run's bulk buffers (sized
	// in Run for the record cadence): no per-sample allocation, and the
	// three-index caps keep later appends from aliasing earlier samples
	// even if an odd cadence outgrows the estimate.
	base := len(e.sampleInts)
	for _, c := range e.cfg.Chip.Clusters {
		e.sampleInts = append(e.sampleInts, c.FreqKHz())
	}
	mid := len(e.sampleInts)
	for _, c := range e.cfg.Chip.Clusters {
		e.sampleInts = append(e.sampleInts, c.Cap())
	}
	end := len(e.sampleInts)
	s.FreqKHz = e.sampleInts[base:mid:mid]
	s.CapIdx = e.sampleInts[mid:end:end]
	ub := len(e.sampleUtils)
	e.sampleUtils = append(e.sampleUtils, e.lastUtil...)
	s.Util = e.sampleUtils[ub:len(e.sampleUtils):len(e.sampleUtils)]
	return s
}

// chipActuator implements ctrl.Actuator on the chip.
type chipActuator struct{ chip *soc.Chip }

func (a chipActuator) SetCap(cluster string, idx int) {
	if c := a.chip.Cluster(cluster); c != nil {
		c.SetCap(idx)
	}
}

func (a chipActuator) SetFloor(cluster string, idx int) {
	if c := a.chip.Cluster(cluster); c != nil {
		c.SetFloor(idx)
	}
}

func (a chipActuator) Pin(cluster string, idx int) {
	if c := a.chip.Cluster(cluster); c != nil {
		// Order matters: widen first so the clamp cannot bite.
		c.SetFloor(0)
		c.SetCap(idx)
		c.SetFloor(idx)
	}
}
