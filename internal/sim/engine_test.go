package sim

import (
	"math"
	"math/rand"
	"testing"

	"nextdvfs/internal/governor"
	"nextdvfs/internal/session"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/workload"
)

func gameTimeline(seed int64, secs float64) *session.Timeline {
	rng := rand.New(rand.NewSource(seed))
	return &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.Lineage(), session.Seconds(secs), rng),
	}}
}

func runNote9(t *testing.T, tl *session.Timeline, mutate func(*Config)) Result {
	t.Helper()
	cfg := Note9Config(tl, 1)
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{}
	if _, err := New(cfg); err == nil {
		t.Fatal("empty config must fail")
	}
	tl := gameTimeline(1, 5)
	good := Note9Config(tl, 1)
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestGameSessionReachesHighFPS(t *testing.T) {
	res := runNote9(t, gameTimeline(2, 60), nil)
	if res.ActiveAvgFPS < 40 {
		t.Fatalf("game active FPS = %.1f under schedutil, want >= 40", res.ActiveAvgFPS)
	}
	if res.FramesDisplayed == 0 {
		t.Fatal("no frames displayed")
	}
	if res.DurationS != 60 {
		t.Fatalf("duration = %g", res.DurationS)
	}
}

func TestGameSessionHeatsAndBurnsPower(t *testing.T) {
	res := runNote9(t, gameTimeline(3, 120), nil)
	if res.AvgPowerW < 2 || res.AvgPowerW > 12 {
		t.Fatalf("game avg power = %.2f W, want 2-12 (paper envelope)", res.AvgPowerW)
	}
	if res.PeakTempBigC < 40 {
		t.Fatalf("game peak big temp = %.1f °C, want well above ambient", res.PeakTempBigC)
	}
	if res.PeakTempBigC > 95 {
		t.Fatalf("game peak big temp = %.1f °C, implausible", res.PeakTempBigC)
	}
}

func TestSpotifyIdleFPSNearZeroButPowerHigh(t *testing.T) {
	// Reproduces the Fig. 1 phenomenon: Spotify's FPS collapses while
	// schedutil keeps frequencies (and power) up due to background load.
	rng := rand.New(rand.NewSource(4))
	tl := &session.Timeline{Scripts: []session.Script{
		{App: workload.Spotify(), Phases: []session.Phase{
			{Inter: workload.InterIdle, DurUS: session.Seconds(60)},
		}},
	}}
	_ = rng
	res := runNote9(t, tl, nil)
	if res.AvgFPS > 5 {
		t.Fatalf("idle spotify FPS = %.1f, want ≈0", res.AvgFPS)
	}
	// Power must stay well above the ~1.5 W idle floor: the waste case.
	if res.AvgPowerW < 1.6 {
		t.Fatalf("idle spotify power = %.2f W — background load should keep it higher", res.AvgPowerW)
	}
}

func TestPerformanceVsPowersaveBracketsSchedutil(t *testing.T) {
	tl := gameTimeline(5, 30)
	perf := runNote9(t, gameTimeline(5, 30), func(c *Config) { c.Governor = governor.Performance{} })
	save := runNote9(t, gameTimeline(5, 30), func(c *Config) { c.Governor = governor.Powersave{} })
	sched := runNote9(t, tl, nil)

	if !(perf.AvgPowerW > sched.AvgPowerW) {
		t.Fatalf("performance power (%.2f) should exceed schedutil (%.2f)", perf.AvgPowerW, sched.AvgPowerW)
	}
	if !(save.AvgPowerW < sched.AvgPowerW) {
		t.Fatalf("powersave power (%.2f) should undercut schedutil (%.2f)", save.AvgPowerW, sched.AvgPowerW)
	}
	// And QoS orders the other way for a heavy game.
	if save.ActiveAvgFPS >= perf.ActiveAvgFPS {
		t.Fatalf("powersave FPS (%.1f) should trail performance (%.1f)", save.ActiveAvgFPS, perf.ActiveAvgFPS)
	}
}

func TestDeterminism(t *testing.T) {
	a := runNote9(t, gameTimeline(7, 20), nil)
	b := runNote9(t, gameTimeline(7, 20), nil)
	if a.AvgPowerW != b.AvgPowerW || a.AvgFPS != b.AvgFPS || a.PeakTempBigC != b.PeakTempBigC {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRun(t *testing.T) {
	a := runNote9(t, gameTimeline(8, 20), func(c *Config) { c.Seed = 1 })
	b := runNote9(t, gameTimeline(8, 20), func(c *Config) { c.Seed = 2 })
	if a.AvgPowerW == b.AvgPowerW && a.AvgFPS == b.AvgFPS {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestFPSNeverExceedsRefresh(t *testing.T) {
	res := runNote9(t, gameTimeline(9, 30), func(c *Config) { c.RecordIntervalUS = 100_000 })
	for _, s := range res.Samples {
		if s.FPS > 60 {
			t.Fatalf("sample at %d µs has FPS %.1f > 60", s.TimeUS, s.FPS)
		}
	}
}

func TestRecorderSamplesCadence(t *testing.T) {
	res := runNote9(t, gameTimeline(10, 10), func(c *Config) { c.RecordIntervalUS = 1_000_000 })
	if len(res.Samples) < 9 || len(res.Samples) > 11 {
		t.Fatalf("samples = %d for 10 s at 1 Hz", len(res.Samples))
	}
	s := res.Samples[0]
	if len(s.FreqKHz) != 3 || len(s.Util) != 3 {
		t.Fatalf("sample cluster arrays wrong: %+v", s)
	}
	if s.App != workload.NameLineage {
		t.Fatalf("sample app = %q", s.App)
	}
}

func TestEnergyMatchesAvgPowerTimesTime(t *testing.T) {
	res := runNote9(t, gameTimeline(11, 15), nil)
	want := res.AvgPowerW * res.DurationS
	if math.Abs(res.EnergyJ-want)/want > 0.01 {
		t.Fatalf("energy %.1f J vs avg*time %.1f J", res.EnergyJ, want)
	}
}

func TestFrequenciesRespectControllerCaps(t *testing.T) {
	// A fixed controller caps big at index 3; schedutil may never exceed.
	capCtl := &fixedCapController{cluster: soc.ClusterBig, idx: 3}
	res := runNote9(t, gameTimeline(12, 20), func(c *Config) {
		c.Controller = capCtl
		c.RecordIntervalUS = 100_000
	})
	chip := soc.Exynos9810()
	maxAllowed := chip.MustCluster(soc.ClusterBig).OPPAt(3).FreqKHz
	for _, s := range res.Samples {
		if s.TimeUS < 200_000 {
			continue // before first control tick
		}
		if s.FreqKHz[0] > maxAllowed {
			t.Fatalf("big freq %d exceeds controller cap %d at %d µs", s.FreqKHz[0], maxAllowed, s.TimeUS)
		}
	}
	if res.Scheme != "fixedcap" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}

func TestDropAccounting(t *testing.T) {
	// Powersave on a heavy game must drop frames; the counters add up.
	res := runNote9(t, gameTimeline(13, 30), func(c *Config) { c.Governor = governor.Powersave{} })
	if res.FramesDropped == 0 {
		t.Fatal("heavy game at min frequency should drop frames")
	}
	if res.FramesDisplayed+res.FramesDropped > res.VSyncs {
		t.Fatal("displayed+dropped exceeds VSyncs")
	}
	if res.DropRate() <= 0 || res.DropRate() > 1 {
		t.Fatalf("drop rate = %g", res.DropRate())
	}
}

func TestAppSwitchResetsRenderer(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tl := session.Fig1Timeline(rng)
	res := runNote9(t, tl, nil)
	if res.DurationS != 280 {
		t.Fatalf("duration = %g, want 280", res.DurationS)
	}
	if res.FramesDisplayed == 0 {
		t.Fatal("no frames over a 280 s interactive session")
	}
}

func TestSnapshotFaultHookRuns(t *testing.T) {
	called := 0
	ctl := &fixedCapController{cluster: soc.ClusterBig, idx: 5}
	runNote9(t, gameTimeline(15, 5), func(c *Config) {
		c.Controller = ctl
		c.SnapshotFault = func(s *ctrlSnapshotAlias) { called++; s.FPS = -1 }
	})
	if called == 0 {
		t.Fatal("snapshot fault hook never ran")
	}
}
