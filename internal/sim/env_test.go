package sim

import (
	"testing"

	"nextdvfs/internal/display"
	"nextdvfs/internal/session"
	"nextdvfs/internal/thermal"
	"nextdvfs/internal/workload"
)

// envTimeline holds one app in one interaction for secs seconds.
func envTimeline(app *workload.ProfileApp, inter workload.Interaction, secs float64) *session.Timeline {
	return &session.Timeline{Scripts: []session.Script{{
		App:    app,
		Phases: []session.Phase{{Inter: inter, DurUS: session.Seconds(secs)}},
	}}}
}

func TestScreenOffShedsBasePower(t *testing.T) {
	run := func(inter workload.Interaction) Result {
		cfg := Note9Config(envTimeline(workload.Spotify(), inter, 30), 5)
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}
	idle := run(workload.InterIdle)
	off := run(workload.InterOff)
	// Same app, same idle background — the whole gap is the display's
	// share of base power. Note9 base is ≈0.9 W; screen-off keeps 25 %.
	gap := idle.AvgPowerW - off.AvgPowerW
	if gap < 0.3 {
		t.Fatalf("screen-off saved only %.3f W (idle %.3f, off %.3f)", gap, idle.AvgPowerW, off.AvgPowerW)
	}
	if off.FramesDropped != 0 {
		t.Fatalf("screen-off counted %d drops", off.FramesDropped)
	}
}

func TestAmbientScheduleShiftsTemperatures(t *testing.T) {
	run := func(sched *thermal.AmbientSchedule) Result {
		cfg := Note9Config(envTimeline(workload.Spotify(), workload.InterIdle, 60), 5)
		cfg.Ambient = sched
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}
	base := run(nil)
	hot, err := thermal.NewAmbientSchedule([]thermal.AmbientStep{{AtUS: 0, AmbientC: 35}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(hot)
	if res.AvgTempBigC < base.AvgTempBigC+10 {
		t.Fatalf("35 °C ambient big temp %.1f vs 21 °C %.1f — schedule not applied", res.AvgTempBigC, base.AvgTempBigC)
	}

	// The schedule cursor rewinds per run: a second engine reusing the
	// exhausted schedule object reproduces the first run bit-for-bit.
	again := run(hot)
	if again.AvgTempBigC != res.AvgTempBigC || again.AvgPowerW != res.AvgPowerW {
		t.Fatalf("schedule reuse drifted: %.6f/%.6f vs %.6f/%.6f",
			res.AvgTempBigC, res.AvgPowerW, again.AvgTempBigC, again.AvgPowerW)
	}
}

func TestRefreshScheduleSwitchesPanel(t *testing.T) {
	sched, err := display.NewRefreshSchedule([]display.RefreshStep{
		{AtUS: session.Seconds(10), RefreshHz: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Note9Config(envTimeline(workload.Lineage(), workload.InterPlay, 20), 5)
	cfg.Refresh = sched
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	// 10 s at 60 Hz + 10 s at 120 Hz ⇒ about 1800 VSyncs; a fixed 60 Hz
	// panel would see ~1200.
	if res.VSyncs < 1500 {
		t.Fatalf("VSyncs = %d, want ≈1800 (panel never switched?)", res.VSyncs)
	}
	if cfg.Display.RefreshHz != 120 {
		t.Fatalf("panel ended at %d Hz, want 120", cfg.Display.RefreshHz)
	}
	// Re-run restores the native rate first, so the totals reproduce.
	if again := eng.Run(); again.VSyncs != res.VSyncs {
		t.Fatalf("re-run VSyncs %d vs %d", again.VSyncs, res.VSyncs)
	}
}
