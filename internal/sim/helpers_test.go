package sim

import "nextdvfs/internal/ctrl"

// ctrlSnapshotAlias keeps the fault-hook test readable.
type ctrlSnapshotAlias = ctrl.Snapshot

// ctrlActuatorAlias mirrors it for controller test doubles.
type ctrlActuatorAlias = ctrl.Actuator

// fixedCapController caps one cluster at a fixed OPP index — a minimal
// ctrl.Controller used to test engine/controller plumbing.
type fixedCapController struct {
	cluster string
	idx     int
}

func (f *fixedCapController) Name() string             { return "fixedcap" }
func (f *fixedCapController) ObserveIntervalUS() int64 { return 25_000 }
func (f *fixedCapController) ControlIntervalUS() int64 { return 100_000 }
func (f *fixedCapController) Observe(ctrl.Snapshot)    {}
func (f *fixedCapController) Control(_ ctrl.Snapshot, act ctrl.Actuator) {
	act.SetCap(f.cluster, f.idx)
}
func (f *fixedCapController) AppChanged(string, bool) {}
func (f *fixedCapController) Reset()                  {}
