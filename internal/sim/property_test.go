package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// TestRunInvariantsAcrossRandomSessions drives the full engine with
// randomized apps/durations/seeds and checks the physical invariants no
// configuration may violate.
func TestRunInvariantsAcrossRandomSessions(t *testing.T) {
	apps := []func() *workload.ProfileApp{
		workload.Home, workload.Facebook, workload.Spotify,
		workload.Chrome, workload.Lineage, workload.PubG, workload.YouTube,
	}
	rng := rand.New(rand.NewSource(20))
	f := func(appSeed uint8, durSeed uint8, seed int16) bool {
		mk := apps[int(appSeed)%len(apps)]
		dur := 10 + float64(durSeed%30) // 10-40 s
		r := rand.New(rand.NewSource(int64(seed)))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(mk(), session.Seconds(dur), r),
		}}
		cfg := Note9Config(tl, int64(seed))
		eng, err := New(cfg)
		if err != nil {
			return false
		}
		res := eng.Run()
		switch {
		case res.AvgPowerW <= 0 || math.IsNaN(res.AvgPowerW):
			return false
		case res.PeakPowerW < res.AvgPowerW:
			return false
		case res.AvgTempBigC < 21-1e-6 || res.AvgTempDevC < 21-1e-6:
			return false // nothing may cool below ambient
		case res.PeakTempBigC > 120:
			return false // silicon melts
		case res.AvgFPS < 0 || res.AvgFPS > 60:
			return false
		case res.FramesDisplayed+res.FramesDropped > res.VSyncs:
			return false
		case res.EnergyJ < 0:
			return false
		case math.Abs(res.EnergyJ-res.AvgPowerW*res.DurationS) > 0.02*res.EnergyJ+1:
			return false // energy must integrate consistently
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestCapMonotonePower pins the big/GPU caps at descending levels on
// the same game session: average power must be non-increasing (within
// jitter tolerance) as caps descend — the physical premise the whole
// paper rests on.
func TestCapMonotonePower(t *testing.T) {
	run := func(level int) float64 {
		r := rand.New(rand.NewSource(33))
		tl := &session.Timeline{Scripts: []session.Script{{
			App: workload.Lineage(),
			Phases: []session.Phase{
				{Inter: workload.InterPlay, DurUS: session.Seconds(40)},
			},
		}}}
		_ = r
		cfg := Note9Config(tl, 33)
		cfg.Controller = &fixedTripleCap{big: level * 17 / 4, little: level * 9 / 4, gpu: level * 5 / 4}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run().AvgPowerW
	}
	prev := math.Inf(1)
	for level := 4; level >= 0; level-- { // caps descend from top to floor
		p := run(level)
		if p > prev*1.05 {
			t.Fatalf("power increased while caps descended: level %d → %.2f W (prev %.2f)", level, p, prev)
		}
		prev = p
	}
}

// fixedTripleCap pins all three clusters' caps every control period.
type fixedTripleCap struct{ big, little, gpu int }

func (f *fixedTripleCap) Name() string             { return "tricap" }
func (f *fixedTripleCap) ObserveIntervalUS() int64 { return 0 }
func (f *fixedTripleCap) ControlIntervalUS() int64 { return 50_000 }
func (f *fixedTripleCap) Observe(ctrlSnapshotAlias) {
}
func (f *fixedTripleCap) Control(_ ctrlSnapshotAlias, act ctrlActuatorAlias) {
	act.SetCap("big", f.big)
	act.SetCap("LITTLE", f.little)
	act.SetCap("GPU", f.gpu)
}
func (f *fixedTripleCap) AppChanged(string, bool) {}
func (f *fixedTripleCap) Reset()                  {}
