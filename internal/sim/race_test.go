//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the instrumentation
// allocates shadow state of its own).
const raceEnabled = true
