package sim

import "nextdvfs/internal/stats"

// Sample is one row of the recorded trace.
type Sample struct {
	TimeUS      int64
	App         string
	Interaction string
	FPS         float64
	PowerW      float64
	TempBigC    float64
	TempDevC    float64
	// FreqKHz per cluster in chip order.
	FreqKHz []int
	// CapIdx per cluster in chip order (what a controller set).
	CapIdx []int
	// Util per cluster in chip order.
	Util []float64
}

// Result summarizes one simulation run.
type Result struct {
	// Scheme names the governor/controller stack ("schedutil", "next",
	// "intqospm", ...).
	Scheme string
	// DurationS is simulated session length.
	DurationS float64

	AvgPowerW  float64
	PeakPowerW float64
	EnergyJ    float64

	AvgTempBigC  float64
	PeakTempBigC float64
	AvgTempDevC  float64
	PeakTempDevC float64

	AvgFPS          float64
	FramesDisplayed int64
	FramesDropped   int64
	VSyncs          int64

	// ActiveAvgFPS averages FPS only over ticks where the workload
	// wanted frames — the QoS that users perceive.
	ActiveAvgFPS float64

	Samples []Sample
}

// DropRate returns dropped/(displayed+dropped), 0 when no frames.
func (r *Result) DropRate() float64 {
	total := r.FramesDisplayed + r.FramesDropped
	if total == 0 {
		return 0
	}
	return float64(r.FramesDropped) / float64(total)
}

// accumulators aggregates the running statistics during a run.
type accumulators struct {
	power     stats.Summary
	tempBig   stats.Summary
	tempDev   stats.Summary
	fps       stats.Summary
	activeFPS stats.Summary
}
