package soc

import "fmt"

// Canonical cluster names used by the Exynos 9810 preset and expected by
// the Next agent's default configuration.
const (
	ClusterBig    = "big"
	ClusterLITTLE = "LITTLE"
	ClusterGPU    = "GPU"
)

// Chip is a set of DVFS clusters sharing one die. Cluster order is
// stable and significant: the Next agent's action space enumerates
// clusters in chip order.
type Chip struct {
	Name     string
	Clusters []*Cluster
}

// Cluster returns the cluster with the given name, or nil if absent.
func (ch *Chip) Cluster(name string) *Cluster {
	for _, c := range ch.Clusters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// MustCluster is Cluster but panics when the name is unknown; used where
// a missing cluster means the platform preset is inconsistent.
func (ch *Chip) MustCluster(name string) *Cluster {
	c := ch.Cluster(name)
	if c == nil {
		panic(fmt.Sprintf("soc: chip %q has no cluster %q", ch.Name, name))
	}
	return c
}

// ResetDVFS restores every cluster to boot state.
func (ch *Chip) ResetDVFS() {
	for _, c := range ch.Clusters {
		c.ResetDVFS()
	}
}

// voltageCurve synthesizes a monotone V/f curve for an ascending
// frequency table: V(f) = vMin + (vMax−vMin)·x^1.6 with x the normalized
// frequency. The 1.6 exponent bends the curve upward at high frequency,
// matching the shape of published mobile DVFS tables (voltage rises
// steeply near fmax, which is what makes the top OPPs so expensive and
// capping them so profitable).
func voltageCurve(freqsMHz []int, vMinMicro, vMaxMicro int) []OPP {
	n := len(freqsMHz)
	opps := make([]OPP, n)
	fMin := float64(freqsMHz[0])
	fMax := float64(freqsMHz[n-1])
	for i, f := range freqsMHz {
		x := 0.0
		if fMax > fMin {
			x = (float64(f) - fMin) / (fMax - fMin)
		}
		// x^1.6 without math.Pow in a loop-friendly way is not worth the
		// obscurity; the preset is built once.
		v := float64(vMinMicro) + (float64(vMaxMicro)-float64(vMinMicro))*pow16(x)
		opps[i] = OPP{FreqKHz: f * 1000, VoltMicro: int(v)}
	}
	return opps
}

// pow16 computes x^1.6 for x in [0,1] as x * x^0.6, with x^0.6 via
// exp/log avoided: we use the identity x^0.6 = (x^3)^0.2 ≈ sqrt(sqrt(x))
// blends poorly, so just use math.Pow at preset-build time.
func pow16(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return powf(x, 1.6)
}

// Exynos9810 returns the Samsung Galaxy Note 9 platform exactly as the
// paper describes it: 4 Mongoose 3 big cores (18 OPPs, 650–2704 MHz),
// 4 Cortex-A55 LITTLE cores (10 OPPs, 455–1794 MHz) and the Mali-G72
// MP18 GPU (6 OPPs, 260–572 MHz).
func Exynos9810() *Chip {
	// Paper lists tables descending; stored ascending.
	bigMHz := []int{650, 741, 858, 962, 1066, 1170, 1261, 1469, 1586, 1690, 1794, 1924, 2002, 2106, 2314, 2496, 2652, 2704}
	littleMHz := []int{455, 598, 715, 832, 949, 1053, 1248, 1456, 1690, 1794}
	gpuMHz := []int{260, 299, 338, 455, 546, 572}

	return &Chip{
		Name: "Exynos 9810",
		Clusters: []*Cluster{
			NewCluster(ClusterBig, KindCPU, 4, 2.2, voltageCurve(bigMHz, 600_000, 1_150_000)),
			NewCluster(ClusterLITTLE, KindCPU, 4, 1.0, voltageCurve(littleMHz, 550_000, 950_000)),
			NewCluster(ClusterGPU, KindGPU, 18, 1.0, voltageCurve(gpuMHz, 600_000, 900_000)),
		},
	}
}

// Snapdragon855 returns a Snapdragon-855-class flagship: 4 Kryo 485
// Gold cores (21 OPPs, 710–2841 MHz, the prime core's table), 4 Kryo
// 485 Silver cores (14 OPPs, 576–1785 MHz) and an Adreno-640-class GPU
// (6 OPPs, 257–675 MHz). Built on a 7 nm process, its voltage rails sit
// below the Exynos 9810's 10 nm tables.
func Snapdragon855() *Chip {
	bigMHz := []int{710, 825, 940, 1056, 1171, 1286, 1401, 1497, 1612, 1708, 1804, 1920, 2016, 2131, 2227, 2323, 2419, 2534, 2649, 2745, 2841}
	littleMHz := []int{576, 672, 768, 883, 960, 1056, 1152, 1248, 1344, 1459, 1555, 1632, 1708, 1785}
	gpuMHz := []int{257, 345, 427, 499, 585, 675}

	return &Chip{
		Name: "Snapdragon 855",
		Clusters: []*Cluster{
			NewCluster(ClusterBig, KindCPU, 4, 2.3, voltageCurve(bigMHz, 570_000, 1_050_000)),
			NewCluster(ClusterLITTLE, KindCPU, 4, 1.1, voltageCurve(littleMHz, 520_000, 880_000)),
			NewCluster(ClusterGPU, KindGPU, 16, 1.0, voltageCurve(gpuMHz, 580_000, 860_000)),
		},
	}
}

// Mid6 returns a mid-range two-CPU-cluster SoC (Snapdragon-6-series /
// Dimensity-class): 2 performance cores topping out at 2.0 GHz, 6
// efficiency cores and a small GPU, all with short OPP tables. It is
// the budget end of the platform sweep — less headroom to cap, a
// smaller action space for the agent.
func Mid6() *Chip {
	bigMHz := []int{633, 902, 1113, 1401, 1555, 1747, 1901, 2002}
	littleMHz := []int{300, 576, 748, 998, 1209, 1440, 1612, 1708}
	gpuMHz := []int{180, 267, 355, 430, 565}

	return &Chip{
		Name: "Mid6",
		Clusters: []*Cluster{
			NewCluster(ClusterBig, KindCPU, 2, 2.0, voltageCurve(bigMHz, 560_000, 1_000_000)),
			NewCluster(ClusterLITTLE, KindCPU, 6, 1.0, voltageCurve(littleMHz, 520_000, 900_000)),
			NewCluster(ClusterGPU, KindGPU, 10, 1.0, voltageCurve(gpuMHz, 560_000, 840_000)),
		},
	}
}

// GenericPhone returns a small three-cluster platform with short OPP
// tables. It exists for tests that need a tractable state space and to
// prove the agent is not hard-coded to the Exynos preset.
func GenericPhone() *Chip {
	bigMHz := []int{600, 1000, 1400, 1800, 2200}
	littleMHz := []int{400, 800, 1200, 1600}
	gpuMHz := []int{200, 400, 600}
	return &Chip{
		Name: "GenericPhone",
		Clusters: []*Cluster{
			NewCluster(ClusterBig, KindCPU, 4, 2.0, voltageCurve(bigMHz, 600_000, 1_100_000)),
			NewCluster(ClusterLITTLE, KindCPU, 4, 1.0, voltageCurve(littleMHz, 550_000, 900_000)),
			NewCluster(ClusterGPU, KindGPU, 8, 1.0, voltageCurve(gpuMHz, 600_000, 850_000)),
		},
	}
}
