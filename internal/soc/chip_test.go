package soc

import "testing"

func TestExynos9810MatchesPaperTables(t *testing.T) {
	chip := Exynos9810()
	if len(chip.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(chip.Clusters))
	}

	big := chip.MustCluster(ClusterBig)
	if big.NumOPPs() != 18 {
		t.Errorf("big OPPs = %d, want 18 (paper: 18 levels)", big.NumOPPs())
	}
	if big.MinOPP().FreqKHz != 650_000 || big.MaxOPP().FreqKHz != 2_704_000 {
		t.Errorf("big range = %d..%d kHz, want 650000..2704000",
			big.MinOPP().FreqKHz, big.MaxOPP().FreqKHz)
	}
	if big.Cores != 4 {
		t.Errorf("big cores = %d, want 4 (Mongoose 3)", big.Cores)
	}

	little := chip.MustCluster(ClusterLITTLE)
	if little.NumOPPs() != 10 {
		t.Errorf("LITTLE OPPs = %d, want 10", little.NumOPPs())
	}
	if little.MinOPP().FreqKHz != 455_000 || little.MaxOPP().FreqKHz != 1_794_000 {
		t.Errorf("LITTLE range = %d..%d kHz, want 455000..1794000",
			little.MinOPP().FreqKHz, little.MaxOPP().FreqKHz)
	}

	gpu := chip.MustCluster(ClusterGPU)
	if gpu.NumOPPs() != 6 {
		t.Errorf("GPU OPPs = %d, want 6", gpu.NumOPPs())
	}
	if gpu.MinOPP().FreqKHz != 260_000 || gpu.MaxOPP().FreqKHz != 572_000 {
		t.Errorf("GPU range = %d..%d kHz, want 260000..572000",
			gpu.MinOPP().FreqKHz, gpu.MaxOPP().FreqKHz)
	}
	if gpu.Cores != 18 {
		t.Errorf("GPU cores = %d, want 18 (Mali-G72 MP18)", gpu.Cores)
	}
	if gpu.Kind != KindGPU {
		t.Error("GPU cluster kind wrong")
	}

	// The paper's specific intermediate frequencies must be present.
	wantBig := []int{650, 741, 858, 962, 1066, 1170, 1261, 1469, 1586, 1690, 1794, 1924, 2002, 2106, 2314, 2496, 2652, 2704}
	for i, mhz := range wantBig {
		if got := big.OPPAt(i).FreqKHz; got != mhz*1000 {
			t.Errorf("big OPP[%d] = %d kHz, want %d", i, got, mhz*1000)
		}
	}
	wantGPU := []int{260, 299, 338, 455, 546, 572}
	for i, mhz := range wantGPU {
		if got := gpu.OPPAt(i).FreqKHz; got != mhz*1000 {
			t.Errorf("GPU OPP[%d] = %d kHz, want %d", i, got, mhz*1000)
		}
	}
}

func TestVoltageCurveMonotone(t *testing.T) {
	for _, chip := range []*Chip{Exynos9810(), GenericPhone()} {
		for _, c := range chip.Clusters {
			prev := 0
			for i := 0; i < c.NumOPPs(); i++ {
				v := c.OPPAt(i).VoltMicro
				if v <= prev {
					t.Errorf("%s/%s: voltage not strictly increasing at OPP %d (%d <= %d)",
						chip.Name, c.Name, i, v, prev)
				}
				prev = v
			}
			lo, hi := c.MinOPP().Volts(), c.MaxOPP().Volts()
			if lo < 0.4 || hi > 1.3 {
				t.Errorf("%s/%s: voltage range %.2f–%.2f V implausible for mobile silicon",
					chip.Name, c.Name, lo, hi)
			}
		}
	}
}

func TestChipClusterLookup(t *testing.T) {
	chip := Exynos9810()
	if chip.Cluster("nope") != nil {
		t.Fatal("unknown cluster should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCluster should panic on unknown name")
		}
	}()
	chip.MustCluster("nope")
}

func TestChipResetDVFS(t *testing.T) {
	chip := Exynos9810()
	for _, c := range chip.Clusters {
		c.SetCap(1)
		c.SetCur(0)
	}
	chip.ResetDVFS()
	for _, c := range chip.Clusters {
		if c.Cap() != c.NumOPPs()-1 || c.Cur() != c.NumOPPs()-1 || c.Floor() != 0 {
			t.Errorf("%s not reset: cap=%d cur=%d floor=%d", c.Name, c.Cap(), c.Cur(), c.Floor())
		}
	}
}

func TestGenericPhonePreset(t *testing.T) {
	chip := GenericPhone()
	if len(chip.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(chip.Clusters))
	}
	for _, name := range []string{ClusterBig, ClusterLITTLE, ClusterGPU} {
		if chip.Cluster(name) == nil {
			t.Errorf("missing cluster %q", name)
		}
	}
}
