package soc

import "fmt"

// Kind distinguishes the two PE classes the simulator models.
type Kind int

// Cluster kinds.
const (
	KindCPU Kind = iota
	KindGPU
)

// String returns "CPU" or "GPU".
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "CPU"
	case KindGPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// OPP is one operating performance point: a frequency and the supply
// voltage the rail needs to sustain it.
type OPP struct {
	FreqKHz   int // core clock in kHz
	VoltMicro int // supply voltage in µV
}

// FreqMHz returns the OPP frequency in MHz.
func (o OPP) FreqMHz() float64 { return float64(o.FreqKHz) / 1000 }

// FreqGHz returns the OPP frequency in GHz.
func (o OPP) FreqGHz() float64 { return float64(o.FreqKHz) / 1e6 }

// Volts returns the supply voltage in volts.
func (o OPP) Volts() float64 { return float64(o.VoltMicro) / 1e6 }

// Cluster is one DVFS domain: a set of identical cores sharing a clock
// and a voltage rail. Frequencies are selected per cluster, never per
// core (cluster-wise DVFS, as on the Exynos 9810).
//
// OPPs are stored in ascending frequency order, so "frequency up" is
// index+1. The cluster maintains three indices:
//
//   - cur:   the OPP the governor last requested (clamped);
//   - cap:   the maxfreq cap (what the Next agent manipulates);
//   - floor: the minfreq floor (used by input boost).
//
// Invariant: 0 <= floor <= cap <= len(OPPs)-1 and floor <= cur <= cap.
type Cluster struct {
	Name  string
	Kind  Kind
	Cores int
	// IPC is the per-core instructions-per-cycle throughput factor used
	// by the performance model to convert clock cycles into work units.
	// Big out-of-order cores have IPC > LITTLE in-order cores.
	IPC  float64
	opps []OPP

	cur   int
	cap   int
	floor int
}

// NewCluster builds a cluster from an ascending-frequency OPP table.
// The initial state is floor=0, cap=top, cur=top (mirrors Linux boot
// state before a governor takes over). It panics on an empty or
// unsorted table: a malformed platform description is a programming
// error, not a runtime condition.
func NewCluster(name string, kind Kind, cores int, ipc float64, opps []OPP) *Cluster {
	if len(opps) == 0 {
		panic("soc: cluster needs at least one OPP")
	}
	for i := 1; i < len(opps); i++ {
		if opps[i].FreqKHz <= opps[i-1].FreqKHz {
			panic(fmt.Sprintf("soc: OPP table for %q not strictly ascending at %d", name, i))
		}
	}
	if cores <= 0 {
		panic("soc: cluster needs at least one core")
	}
	if ipc <= 0 {
		panic("soc: cluster IPC must be positive")
	}
	c := &Cluster{Name: name, Kind: kind, Cores: cores, IPC: ipc}
	c.opps = make([]OPP, len(opps))
	copy(c.opps, opps)
	c.cap = len(opps) - 1
	c.cur = len(opps) - 1
	return c
}

// NumOPPs returns the number of operating points.
func (c *Cluster) NumOPPs() int { return len(c.opps) }

// OPPAt returns the OPP at index i (clamped into range).
func (c *Cluster) OPPAt(i int) OPP {
	return c.opps[clampIdx(i, 0, len(c.opps)-1)]
}

// Cur returns the current OPP index.
func (c *Cluster) Cur() int { return c.cur }

// CurOPP returns the current operating point.
func (c *Cluster) CurOPP() OPP { return c.opps[c.cur] }

// Cap returns the maxfreq cap index.
func (c *Cluster) Cap() int { return c.cap }

// Floor returns the minfreq floor index.
func (c *Cluster) Floor() int { return c.floor }

// SetCur requests OPP index i; the effective index is clamped into
// [floor, cap]. It returns the index actually applied.
func (c *Cluster) SetCur(i int) int {
	c.cur = clampIdx(i, c.floor, c.cap)
	return c.cur
}

// SetCap moves the maxfreq cap to index i (clamped into [floor, top]).
// If the current OPP is above the new cap it is pulled down — exactly
// what writing scaling_max_freq does on Linux. Returns the applied cap.
func (c *Cluster) SetCap(i int) int {
	c.cap = clampIdx(i, c.floor, len(c.opps)-1)
	if c.cur > c.cap {
		c.cur = c.cap
	}
	return c.cap
}

// SetFloor moves the minfreq floor to index i (clamped into [0, cap]).
// If the current OPP is below the new floor it is pushed up. Returns
// the applied floor.
func (c *Cluster) SetFloor(i int) int {
	c.floor = clampIdx(i, 0, c.cap)
	if c.cur < c.floor {
		c.cur = c.floor
	}
	return c.floor
}

// FreqKHz returns the current clock in kHz.
func (c *Cluster) FreqKHz() int { return c.opps[c.cur].FreqKHz }

// FreqGHz returns the current clock in GHz.
func (c *Cluster) FreqGHz() float64 { return c.opps[c.cur].FreqGHz() }

// Volts returns the current rail voltage in volts.
func (c *Cluster) Volts() float64 { return c.opps[c.cur].Volts() }

// MaxOPP returns the fastest operating point in the table (ignoring the
// cap), used for normalization (utilization, PPDW bounds).
func (c *Cluster) MaxOPP() OPP { return c.opps[len(c.opps)-1] }

// MinOPP returns the slowest operating point in the table.
func (c *Cluster) MinOPP() OPP { return c.opps[0] }

// IndexForFreqKHz returns the lowest OPP index whose frequency is >=
// khz, or the top index if khz exceeds the table. This is the cpufreq
// "CL" (ceiling) relation governors use to map a target frequency onto
// the discrete table.
func (c *Cluster) IndexForFreqKHz(khz int) int {
	for i, o := range c.opps {
		if o.FreqKHz >= khz {
			return i
		}
	}
	return len(c.opps) - 1
}

// CyclesPerTick returns how many effective work-cycles the cluster
// retires in dt seconds at its current OPP with all cores busy:
// f × IPC × cores. The workload model divides its frame costs by this.
func (c *Cluster) CyclesPerTick(dtSec float64) float64 {
	return float64(c.opps[c.cur].FreqKHz) * 1e3 * c.IPC * float64(c.Cores) * dtSec
}

// ResetDVFS restores boot state: floor 0, cap top, cur top.
func (c *Cluster) ResetDVFS() {
	c.floor = 0
	c.cap = len(c.opps) - 1
	c.cur = c.cap
}

func clampIdx(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
