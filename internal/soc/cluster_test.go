package soc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCluster() *Cluster {
	return NewCluster("test", KindCPU, 4, 1.5, []OPP{
		{FreqKHz: 500_000, VoltMicro: 600_000},
		{FreqKHz: 1_000_000, VoltMicro: 750_000},
		{FreqKHz: 1_500_000, VoltMicro: 900_000},
		{FreqKHz: 2_000_000, VoltMicro: 1_100_000},
	})
}

func TestClusterBootState(t *testing.T) {
	c := testCluster()
	if c.Cur() != 3 || c.Cap() != 3 || c.Floor() != 0 {
		t.Fatalf("boot state cur=%d cap=%d floor=%d, want 3/3/0", c.Cur(), c.Cap(), c.Floor())
	}
	if c.FreqKHz() != 2_000_000 {
		t.Fatalf("boot freq = %d", c.FreqKHz())
	}
}

func TestSetCurClampsToCapAndFloor(t *testing.T) {
	c := testCluster()
	c.SetCap(2)
	if got := c.SetCur(3); got != 2 {
		t.Fatalf("SetCur above cap applied %d, want 2", got)
	}
	c.SetFloor(1)
	if got := c.SetCur(0); got != 1 {
		t.Fatalf("SetCur below floor applied %d, want 1", got)
	}
}

func TestSetCapPullsCurrentDown(t *testing.T) {
	c := testCluster()
	c.SetCur(3)
	c.SetCap(1)
	if c.Cur() != 1 {
		t.Fatalf("cur after cap pull-down = %d, want 1", c.Cur())
	}
}

func TestSetFloorPushesCurrentUp(t *testing.T) {
	c := testCluster()
	c.SetCur(0)
	c.SetFloor(2)
	if c.Cur() != 2 {
		t.Fatalf("cur after floor push-up = %d, want 2", c.Cur())
	}
}

func TestSetCapCannotGoBelowFloor(t *testing.T) {
	c := testCluster()
	c.SetFloor(2)
	if got := c.SetCap(0); got != 2 {
		t.Fatalf("cap below floor applied %d, want 2", got)
	}
}

func TestDVFSInvariantUnderRandomOps(t *testing.T) {
	// Property: any sequence of SetCur/SetCap/SetFloor keeps
	// 0 <= floor <= cur <= cap <= top.
	rng := rand.New(rand.NewSource(3))
	f := func(ops []uint8) bool {
		c := testCluster()
		top := c.NumOPPs() - 1
		for _, op := range ops {
			idx := int(op>>2) % (top + 2) // occasionally out of range
			switch op % 3 {
			case 0:
				c.SetCur(idx)
			case 1:
				c.SetCap(idx)
			case 2:
				c.SetFloor(idx)
			}
			if c.Floor() < 0 || c.Floor() > c.Cur() || c.Cur() > c.Cap() || c.Cap() > top {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexForFreqKHz(t *testing.T) {
	c := testCluster()
	tests := []struct {
		khz  int
		want int
	}{
		{0, 0}, {500_000, 0}, {500_001, 1},
		{1_200_000, 2}, {2_000_000, 3}, {9_999_999, 3},
	}
	for _, tt := range tests {
		if got := c.IndexForFreqKHz(tt.khz); got != tt.want {
			t.Errorf("IndexForFreqKHz(%d) = %d, want %d", tt.khz, got, tt.want)
		}
	}
}

func TestCyclesPerTick(t *testing.T) {
	c := testCluster()
	c.SetCur(1) // 1 GHz, IPC 1.5, 4 cores
	got := c.CyclesPerTick(0.001)
	want := 1e9 * 1.5 * 4 * 0.001
	if got != want {
		t.Fatalf("CyclesPerTick = %g, want %g", got, want)
	}
}

func TestResetDVFS(t *testing.T) {
	c := testCluster()
	c.SetFloor(1)
	c.SetCap(2)
	c.SetCur(1)
	c.ResetDVFS()
	if c.Floor() != 0 || c.Cap() != 3 || c.Cur() != 3 {
		t.Fatalf("reset state floor=%d cap=%d cur=%d", c.Floor(), c.Cap(), c.Cur())
	}
}

func TestNewClusterValidation(t *testing.T) {
	good := []OPP{{FreqKHz: 1, VoltMicro: 1}, {FreqKHz: 2, VoltMicro: 2}}
	for _, tt := range []struct {
		name string
		fn   func()
	}{
		{"empty opps", func() { NewCluster("x", KindCPU, 1, 1, nil) }},
		{"unsorted", func() {
			NewCluster("x", KindCPU, 1, 1, []OPP{{FreqKHz: 2}, {FreqKHz: 1}})
		}},
		{"zero cores", func() { NewCluster("x", KindCPU, 0, 1, good) }},
		{"zero ipc", func() { NewCluster("x", KindCPU, 1, 0, good) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestOPPConversions(t *testing.T) {
	o := OPP{FreqKHz: 2_704_000, VoltMicro: 1_150_000}
	if o.FreqMHz() != 2704 {
		t.Errorf("FreqMHz = %g", o.FreqMHz())
	}
	if o.FreqGHz() != 2.704 {
		t.Errorf("FreqGHz = %g", o.FreqGHz())
	}
	if o.Volts() != 1.15 {
		t.Errorf("Volts = %g", o.Volts())
	}
}

func TestKindString(t *testing.T) {
	if KindCPU.String() != "CPU" || KindGPU.String() != "GPU" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
}
