// Package soc models the hardware control surface of a heterogeneous
// mobile MPSoC: processing-element clusters, their operating performance
// points (OPPs: frequency/voltage pairs) and the per-cluster DVFS
// controls (current OPP, maxfreq cap, minfreq floor).
//
// The paper's platform — the Exynos 9810 in the Samsung Galaxy Note 9 —
// is provided as a preset with the exact frequency tables the paper
// lists: 18 OPPs for the Mongoose 3 big cluster (650–2704 MHz), 10 for
// the Cortex-A55 LITTLE cluster (455–1794 MHz) and 6 for the Mali-G72
// MP18 GPU (260–572 MHz). Voltages are not published in the paper, so a
// calibrated monotone V/f curve is synthesized per cluster (see
// DESIGN.md §2).
//
// DVFS semantics mirror Linux cpufreq: a governor (or the Next agent)
// never sets "the frequency" directly — it moves the cap/floor or
// requests an OPP, and the cluster clamps the request into
// [floor, cap]. This is exactly the control surface the paper's agent
// uses ("setting the maxfreq provides the flexibility for the PEs to
// operate within the range").
package soc
