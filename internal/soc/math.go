package soc

import "math"

// powf is math.Pow, isolated so the one transcendental call in this
// package is easy to spot (it only runs at preset construction time,
// never on the simulation hot path).
func powf(x, y float64) float64 { return math.Pow(x, y) }
