package stats

import "testing"

// The simulator's per-tick statistics primitives sit inside the
// zero-allocation tick loop; these pins keep them off the heap.

func TestEWMAPushZeroAlloc(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 0.25
		e.Push(v)
	})
	if allocs != 0 {
		t.Fatalf("EWMA.Push allocates %v per call, want 0", allocs)
	}
}

func TestRollingPushZeroAlloc(t *testing.T) {
	r := NewRolling(64)
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 1
		r.Push(v)
		r.Mean()
	})
	if allocs != 0 {
		t.Fatalf("Rolling.Push/Mean allocates %v per call, want 0", allocs)
	}
}

func TestSummaryPushZeroAlloc(t *testing.T) {
	var s Summary
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 0.5
		s.Push(v)
	})
	if allocs != 0 {
		t.Fatalf("Summary.Push allocates %v per call, want 0", allocs)
	}
}

func TestQuantizerZeroAlloc(t *testing.T) {
	q := NewQuantizer(0, 120, 12)
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 0.37
		if v > 120 {
			v = 0
		}
		q.Value(q.Index(v))
	})
	if allocs != 0 {
		t.Fatalf("Quantizer Index/Value allocates %v per call, want 0", allocs)
	}
}

// ModeCounter.Push runs at the controller's 25 ms cadence rather than
// every tick, but it shares the hot path budget: steady-state pushes
// over a bounded value set must not allocate (map churn reuses cells).
func TestModeCounterSteadyStateZeroAlloc(t *testing.T) {
	m := NewModeCounter(160)
	// Warm: fill the window and materialize every map cell.
	for i := 0; i < 640; i++ {
		m.Push(i % 61)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		m.Push(i % 61)
		m.Mode()
		i++
	})
	if allocs != 0 {
		t.Fatalf("ModeCounter.Push/Mode allocates %v per call in steady state, want 0", allocs)
	}
}
