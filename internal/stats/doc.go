// Package stats provides the small statistical toolkit shared by the
// simulator and the Next agent: streaming mode computation over sliding
// windows, uniform quantizers, histograms, exponentially weighted moving
// averages and rolling aggregates.
//
// Everything in this package is allocation-conscious: the agent calls into
// it every 25 ms of simulated time, and the paper's overhead analysis
// (≈227 ns per invocation) only holds if the hot path stays free of heap
// traffic.
package stats
