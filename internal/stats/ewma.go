package stats

// EWMA is an exponentially weighted moving average with smoothing factor
// Alpha in (0, 1]. Higher Alpha weights recent samples more. The zero
// value is ready to use once Alpha is set; the first Push seeds the
// average directly so there is no cold-start bias toward zero.
//
// The schedutil model uses an EWMA as a cheap stand-in for the kernel's
// PELT utilization tracking.
type EWMA struct {
	Alpha  float64
	value  float64
	seeded bool
}

// Push folds a sample into the average and returns the updated value.
func (e *EWMA) Push(v float64) float64 {
	if !e.seeded {
		e.value = v
		e.seeded = true
		return e.value
	}
	e.value += e.Alpha * (v - e.value)
	return e.value
}

// Value returns the current average (0 before any Push).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether at least one sample has been pushed.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset clears the average back to the unseeded state.
func (e *EWMA) Reset() {
	e.value = 0
	e.seeded = false
}
