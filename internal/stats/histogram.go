package stats

// Histogram counts samples into the bins of a Quantizer. It backs the
// experiment harness' distribution reports (e.g. the PPDW-vs-FPS trend
// of Fig. 4) and the workload validation tests.
type Histogram struct {
	Q      Quantizer
	Counts []int
	total  int
}

// NewHistogram returns an empty histogram over q's bins.
func NewHistogram(q Quantizer) *Histogram {
	return &Histogram{Q: q, Counts: make([]int, q.Levels)}
}

// Push records one sample.
func (h *Histogram) Push(v float64) {
	h.Counts[h.Q.Index(v)]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of samples that fell into bin idx.
func (h *Histogram) Fraction(idx int) float64 {
	if h.total == 0 || idx < 0 || idx >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[idx]) / float64(h.total)
}

// ArgMax returns the index of the fullest bin (ties toward the higher
// bin, matching Mode's QoS-safe behaviour).
func (h *Histogram) ArgMax() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c >= bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Clamp restricts v to [lo, hi]. It is the shared scalar helper used
// across the simulator's models.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt restricts v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
