package stats

// Mode returns the most frequent value in samples. Ties are broken toward
// the larger value: when two frame rates are equally common the agent must
// not under-provision the user's session, so the QoS-safe (higher) target
// wins. The second return value is the count of the winning value; it is 0
// if and only if samples is empty.
func Mode(samples []int) (value, count int) {
	if len(samples) == 0 {
		return 0, 0
	}
	counts := make(map[int]int, 16)
	for _, s := range samples {
		counts[s]++
	}
	value = samples[0]
	count = 0
	for v, c := range counts {
		if c > count || (c == count && v > value) {
			value, count = v, c
		}
	}
	return value, count
}

// ModeCounter maintains frequency counts over a fixed-capacity sliding
// window so the mode can be queried without rescanning the window. Push
// evicts the oldest sample once the window is full, exactly mirroring the
// paper's 160-sample (4 s at 25 ms) frame window.
//
// The zero value is not usable; construct with NewModeCounter.
type ModeCounter struct {
	window []int
	counts map[int]int
	head   int
	filled bool
	sum    int64
}

// NewModeCounter returns a counter over a sliding window of size n.
// n must be positive.
func NewModeCounter(n int) *ModeCounter {
	if n <= 0 {
		panic("stats: ModeCounter window size must be positive")
	}
	return &ModeCounter{
		window: make([]int, n),
		counts: make(map[int]int, 64),
	}
}

// Push adds a sample, evicting the oldest one if the window is full.
func (m *ModeCounter) Push(v int) {
	if m.filled {
		old := m.window[m.head]
		if c := m.counts[old]; c <= 1 {
			delete(m.counts, old)
		} else {
			m.counts[old] = c - 1
		}
		m.sum -= int64(old)
	}
	m.window[m.head] = v
	m.counts[v]++
	m.sum += int64(v)
	m.head++
	if m.head == len(m.window) {
		m.head = 0
		m.filled = true
	}
}

// Mean returns the window average (0 when empty). It exists for the
// mean-vs-mode targeting ablation: the paper argues the mode captures
// the user's dominant frame-rate need where a mean is dragged by
// transients.
func (m *ModeCounter) Mean() float64 {
	n := m.Len()
	if n == 0 {
		return 0
	}
	return float64(m.sum) / float64(n)
}

// Len reports how many samples are currently in the window.
func (m *ModeCounter) Len() int {
	if m.filled {
		return len(m.window)
	}
	return m.head
}

// Cap reports the window capacity.
func (m *ModeCounter) Cap() int { return len(m.window) }

// Full reports whether the window holds Cap() samples.
func (m *ModeCounter) Full() bool { return m.filled }

// Mode returns the most frequent sample in the window with the same
// QoS-safe tie-breaking as the package-level Mode function.
func (m *ModeCounter) Mode() (value, count int) {
	for v, c := range m.counts {
		if c > count || (c == count && v > value) {
			value, count = v, c
		}
	}
	return value, count
}

// Reset empties the window.
func (m *ModeCounter) Reset() {
	m.head = 0
	m.filled = false
	m.sum = 0
	clear(m.counts)
}
