package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModeBasic(t *testing.T) {
	tests := []struct {
		name    string
		in      []int
		wantVal int
		wantCnt int
	}{
		{"empty", nil, 0, 0},
		{"single", []int{42}, 42, 1},
		{"clear winner", []int{1, 2, 2, 2, 3}, 2, 3},
		{"tie breaks high", []int{30, 30, 60, 60}, 60, 2},
		{"all same", []int{7, 7, 7}, 7, 3},
		{"zero fps common", []int{0, 0, 0, 60, 60}, 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, c := Mode(tt.in)
			if v != tt.wantVal || c != tt.wantCnt {
				t.Errorf("Mode(%v) = (%d,%d), want (%d,%d)", tt.in, v, c, tt.wantVal, tt.wantCnt)
			}
		})
	}
}

func TestModeCounterMatchesBatchMode(t *testing.T) {
	// Property: after pushing any stream through a ModeCounter of size n,
	// its mode equals Mode() of the last n samples.
	rng := rand.New(rand.NewSource(1))
	f := func(raw []uint8, sizeSeed uint8) bool {
		n := int(sizeSeed%16) + 1
		mc := NewModeCounter(n)
		var all []int
		for _, r := range raw {
			v := int(r % 61) // FPS-like domain 0..60
			all = append(all, v)
			mc.Push(v)
		}
		start := len(all) - n
		if start < 0 {
			start = 0
		}
		wantV, wantC := Mode(all[start:])
		gotV, gotC := mc.Mode()
		return gotV == wantV && gotC == wantC
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestModeCounterEviction(t *testing.T) {
	mc := NewModeCounter(3)
	for _, v := range []int{1, 1, 1} {
		mc.Push(v)
	}
	if v, c := mc.Mode(); v != 1 || c != 3 {
		t.Fatalf("mode = (%d,%d), want (1,3)", v, c)
	}
	// Push three 2s; the 1s must be fully evicted.
	for _, v := range []int{2, 2, 2} {
		mc.Push(v)
	}
	if v, c := mc.Mode(); v != 2 || c != 3 {
		t.Fatalf("after eviction mode = (%d,%d), want (2,3)", v, c)
	}
	if !mc.Full() {
		t.Fatal("window should be full")
	}
}

func TestModeCounterFrameWindowSize(t *testing.T) {
	// The paper's frame window: 4 s at 25 ms = 160 samples.
	mc := NewModeCounter(160)
	if mc.Cap() != 160 {
		t.Fatalf("cap = %d, want 160", mc.Cap())
	}
	for i := 0; i < 159; i++ {
		mc.Push(60)
	}
	if mc.Full() {
		t.Fatal("window should not be full at 159 samples")
	}
	mc.Push(60)
	if !mc.Full() || mc.Len() != 160 {
		t.Fatalf("window should be full at 160 samples, len=%d", mc.Len())
	}
}

func TestModeCounterReset(t *testing.T) {
	mc := NewModeCounter(4)
	mc.Push(5)
	mc.Push(5)
	mc.Reset()
	if mc.Len() != 0 {
		t.Fatalf("len after reset = %d, want 0", mc.Len())
	}
	if _, c := mc.Mode(); c != 0 {
		t.Fatalf("mode count after reset = %d, want 0", c)
	}
}

func TestNewModeCounterPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewModeCounter(0)
}
