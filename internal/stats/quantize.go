package stats

import "fmt"

// Quantizer maps a continuous value in [Min, Max] onto one of Levels
// uniform bins and back to a representative value (the bin midpoint,
// except the first and last bins which snap to Min and Max so that the
// extremes of the range survive a round trip).
//
// The Next agent uses quantizers to fold continuous observations (power,
// temperature, FPS) into a tabular Q-learning state. The paper's Fig. 6
// sweeps the FPS quantization granularity; Levels is that knob.
type Quantizer struct {
	Min    float64
	Max    float64
	Levels int
}

// NewQuantizer returns a quantizer over [lo, hi] with levels bins.
// It panics if levels < 2 or hi <= lo: a one-bin quantizer carries no
// information and would silently break the agent's state space.
func NewQuantizer(lo, hi float64, levels int) Quantizer {
	if levels < 2 {
		panic(fmt.Sprintf("stats: quantizer needs at least 2 levels, got %d", levels))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: quantizer range invalid: [%g, %g]", lo, hi))
	}
	return Quantizer{Min: lo, Max: hi, Levels: levels}
}

// Index returns the bin index for v, clamped to [0, Levels-1].
func (q Quantizer) Index(v float64) int {
	if v <= q.Min {
		return 0
	}
	if v >= q.Max {
		return q.Levels - 1
	}
	idx := int((v - q.Min) / (q.Max - q.Min) * float64(q.Levels))
	if idx >= q.Levels {
		idx = q.Levels - 1
	}
	return idx
}

// Value returns the representative value for bin idx. Out-of-range
// indices are clamped.
func (q Quantizer) Value(idx int) float64 {
	if idx <= 0 {
		return q.Min
	}
	if idx >= q.Levels-1 {
		return q.Max
	}
	width := (q.Max - q.Min) / float64(q.Levels)
	return q.Min + (float64(idx)+0.5)*width
}

// Step returns the width of one bin.
func (q Quantizer) Step() float64 {
	return (q.Max - q.Min) / float64(q.Levels)
}
