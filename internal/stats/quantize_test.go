package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerIndexBounds(t *testing.T) {
	q := NewQuantizer(0, 60, 3) // the paper's "30" granularity: bins {0,30,60}
	tests := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {19.9, 0},
		{20, 1}, {30, 1}, {39.9, 1},
		{40, 2}, {60, 2}, {120, 2},
	}
	for _, tt := range tests {
		if got := q.Index(tt.v); got != tt.want {
			t.Errorf("Index(%g) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestQuantizerRoundTrip(t *testing.T) {
	// Property: Value(Index(v)) stays within one bin width of v for v in
	// range, for any level count >= 2.
	rng := rand.New(rand.NewSource(2))
	f := func(raw uint16, lv uint8) bool {
		levels := int(lv%60) + 2
		q := NewQuantizer(0, 60, levels)
		v := float64(raw%6000) / 100 // 0..59.99
		idx := q.Index(v)
		if idx < 0 || idx >= levels {
			return false
		}
		rep := q.Value(idx)
		diff := rep - v
		if diff < 0 {
			diff = -diff
		}
		return diff <= q.Step()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerExtremesSurviveRoundTrip(t *testing.T) {
	q := NewQuantizer(0, 60, 7)
	if got := q.Value(q.Index(0)); got != 0 {
		t.Errorf("min round trip = %g, want 0", got)
	}
	if got := q.Value(q.Index(60)); got != 60 {
		t.Errorf("max round trip = %g, want 60", got)
	}
}

func TestQuantizerIndexMonotone(t *testing.T) {
	q := NewQuantizer(20, 95, 8) // temperature-like range
	prev := -1
	for v := 15.0; v <= 100; v += 0.5 {
		idx := q.Index(v)
		if idx < prev {
			t.Fatalf("Index not monotone at v=%g: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestNewQuantizerPanics(t *testing.T) {
	for _, tt := range []struct {
		name     string
		min, max float64
		levels   int
	}{
		{"one level", 0, 1, 1},
		{"inverted range", 10, 0, 4},
		{"empty range", 5, 5, 4},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewQuantizer(tt.min, tt.max, tt.levels)
		})
	}
}
