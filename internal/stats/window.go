package stats

// Rolling is a fixed-capacity sliding window over float64 samples that
// maintains the running sum, so mean queries are O(1). Max and Min are
// O(n) but the windows used by the simulator are small (tens of entries).
//
// The zero value is not usable; construct with NewRolling.
type Rolling struct {
	buf    []float64
	head   int
	filled bool
	sum    float64
}

// NewRolling returns a rolling window with capacity n (n > 0).
func NewRolling(n int) *Rolling {
	if n <= 0 {
		panic("stats: Rolling window size must be positive")
	}
	return &Rolling{buf: make([]float64, n)}
}

// Push adds a sample, evicting the oldest if full.
func (r *Rolling) Push(v float64) {
	if r.filled {
		r.sum -= r.buf[r.head]
	}
	r.buf[r.head] = v
	r.sum += v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.filled = true
	}
}

// Len reports the number of samples currently held.
func (r *Rolling) Len() int {
	if r.filled {
		return len(r.buf)
	}
	return r.head
}

// Full reports whether the window is at capacity.
func (r *Rolling) Full() bool { return r.filled }

// Mean returns the average of the samples in the window (0 when empty).
func (r *Rolling) Mean() float64 {
	n := r.Len()
	if n == 0 {
		return 0
	}
	return r.sum / float64(n)
}

// Max returns the largest sample in the window (0 when empty).
func (r *Rolling) Max() float64 {
	n := r.Len()
	if n == 0 {
		return 0
	}
	hi := r.buf[0]
	for i := 1; i < n; i++ {
		if r.buf[i] > hi {
			hi = r.buf[i]
		}
	}
	return hi
}

// Min returns the smallest sample in the window (0 when empty).
func (r *Rolling) Min() float64 {
	n := r.Len()
	if n == 0 {
		return 0
	}
	lo := r.buf[0]
	for i := 1; i < n; i++ {
		if r.buf[i] < lo {
			lo = r.buf[i]
		}
	}
	return lo
}

// Reset empties the window.
func (r *Rolling) Reset() {
	r.head = 0
	r.filled = false
	r.sum = 0
}

// Summary accumulates count/sum/min/max/peak statistics over an unbounded
// stream. It is used by the metrics recorder for per-session aggregates
// (average power, peak temperature, ...). The zero value is ready to use.
type Summary struct {
	N    int
	Sum  float64
	MinV float64
	MaxV float64
}

// Push folds a sample into the summary.
func (s *Summary) Push(v float64) {
	if s.N == 0 {
		s.MinV, s.MaxV = v, v
	} else {
		if v < s.MinV {
			s.MinV = v
		}
		if v > s.MaxV {
			s.MaxV = v
		}
	}
	s.N++
	s.Sum += v
}

// Mean returns the stream average (0 when empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Max returns the largest sample seen (0 when empty).
func (s *Summary) Max() float64 { return s.MaxV }

// Min returns the smallest sample seen (0 when empty).
func (s *Summary) Min() float64 { return s.MinV }
