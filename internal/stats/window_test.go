package stats

import (
	"math"
	"testing"
)

func TestRollingMean(t *testing.T) {
	r := NewRolling(4)
	if r.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		r.Push(v)
	}
	if got := r.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("mean = %g, want 2.5", got)
	}
	r.Push(5) // evicts 1 -> window {2,3,4,5}
	if got := r.Mean(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("mean after eviction = %g, want 3.5", got)
	}
}

func TestRollingMinMax(t *testing.T) {
	r := NewRolling(3)
	r.Push(7)
	r.Push(-2)
	r.Push(4)
	if r.Max() != 7 || r.Min() != -2 {
		t.Fatalf("min/max = %g/%g, want -2/7", r.Min(), r.Max())
	}
	r.Push(0) // evicts 7
	if r.Max() != 4 {
		t.Fatalf("max after eviction = %g, want 4", r.Max())
	}
}

func TestRollingResetAndLen(t *testing.T) {
	r := NewRolling(2)
	r.Push(1)
	if r.Len() != 1 || r.Full() {
		t.Fatal("len/full wrong after one push")
	}
	r.Push(1)
	if !r.Full() {
		t.Fatal("should be full")
	}
	r.Reset()
	if r.Len() != 0 || r.Mean() != 0 {
		t.Fatal("reset did not clear window")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{3.5, 1.0, 2.5} {
		s.Push(v)
	}
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	if math.Abs(s.Mean()-7.0/3) > 1e-12 {
		t.Fatalf("mean = %g", s.Mean())
	}
	if s.Min() != 1.0 || s.Max() != 3.5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmptyIsZero(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestEWMASeedsWithFirstSample(t *testing.T) {
	e := EWMA{Alpha: 0.25}
	if e.Seeded() {
		t.Fatal("zero value should be unseeded")
	}
	if got := e.Push(8); got != 8 {
		t.Fatalf("first push = %g, want 8 (no cold-start bias)", got)
	}
	got := e.Push(0) // 8 + 0.25*(0-8) = 6
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("second push = %g, want 6", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Alpha: 0.3}
	for i := 0; i < 200; i++ {
		e.Push(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA did not converge: %g", e.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(NewQuantizer(0, 60, 3))
	for _, v := range []float64{0, 1, 2, 30, 59, 60} {
		h.Push(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.ArgMax() != 0 {
		t.Fatalf("argmax = %d, want 0", h.ArgMax())
	}
	if got := h.Fraction(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fraction(0) = %g", got)
	}
}

func TestClampHelpers(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Fatal("ClampInt wrong")
	}
}
