package thermal

import (
	"fmt"
	"sort"
)

// AmbientStep is one piecewise-constant segment of an ambient schedule:
// from AtUS onward the environment sits at AmbientC, until the next
// step takes over.
type AmbientStep struct {
	AtUS     int64
	AmbientC float64
}

// AmbientSchedule drives Model.AmbientC over a run — the scenario
// engine's hook for sessions that move between environments (outdoors,
// a hot car, an air-conditioned office). Steps are piecewise constant
// and must be queried with non-decreasing timestamps; the engine calls
// Start once per run and At once per tick, both O(1) amortized.
type AmbientSchedule struct {
	steps []AmbientStep
	idx   int
}

// NewAmbientSchedule builds a schedule from steps. At least one step
// must start at (or before) time zero so At is defined for the whole
// run; steps are sorted by time. Duplicate timestamps are a programming
// error (schedules come from scenario compilation, not user input).
func NewAmbientSchedule(steps []AmbientStep) (*AmbientSchedule, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("thermal: ambient schedule needs at least one step")
	}
	s := &AmbientSchedule{steps: append([]AmbientStep(nil), steps...)}
	sort.Slice(s.steps, func(i, j int) bool { return s.steps[i].AtUS < s.steps[j].AtUS })
	if s.steps[0].AtUS > 0 {
		return nil, fmt.Errorf("thermal: ambient schedule starts at %d µs, needs a step at time 0", s.steps[0].AtUS)
	}
	for i := 1; i < len(s.steps); i++ {
		if s.steps[i].AtUS == s.steps[i-1].AtUS {
			return nil, fmt.Errorf("thermal: ambient schedule has duplicate step at %d µs", s.steps[i].AtUS)
		}
	}
	return s, nil
}

// Start rewinds the cursor; the engine calls it at the top of every
// run so a schedule (like the rest of a sim.Config) can be re-run.
func (s *AmbientSchedule) Start() { s.idx = 0 }

// At returns the ambient at nowUS. nowUS must be non-decreasing between
// Start calls.
func (s *AmbientSchedule) At(nowUS int64) float64 {
	for s.idx+1 < len(s.steps) && s.steps[s.idx+1].AtUS <= nowUS {
		s.idx++
	}
	return s.steps[s.idx].AmbientC
}

// Steps returns a copy of the schedule's segments (for reporting).
func (s *AmbientSchedule) Steps() []AmbientStep {
	return append([]AmbientStep(nil), s.steps...)
}
