package thermal

import "testing"

func TestAmbientScheduleSteps(t *testing.T) {
	s, err := NewAmbientSchedule([]AmbientStep{
		{AtUS: 10_000_000, AmbientC: 35},
		{AtUS: 0, AmbientC: 21},
		{AtUS: 20_000_000, AmbientC: 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	cases := []struct {
		atUS int64
		want float64
	}{
		{0, 21}, {9_999_999, 21}, {10_000_000, 35}, {15_000_000, 35},
		{20_000_000, 18}, {1 << 40, 18},
	}
	for _, c := range cases {
		if got := s.At(c.atUS); got != c.want {
			t.Fatalf("At(%d) = %v, want %v", c.atUS, got, c.want)
		}
	}
	// Restartable: a second run sees the same values.
	s.Start()
	if got := s.At(0); got != 21 {
		t.Fatalf("after restart At(0) = %v, want 21", got)
	}
}

func TestAmbientScheduleValidation(t *testing.T) {
	if _, err := NewAmbientSchedule(nil); err == nil {
		t.Fatal("empty schedule should fail")
	}
	if _, err := NewAmbientSchedule([]AmbientStep{{AtUS: 5, AmbientC: 21}}); err == nil {
		t.Fatal("schedule without a time-0 step should fail")
	}
	if _, err := NewAmbientSchedule([]AmbientStep{
		{AtUS: 0, AmbientC: 21}, {AtUS: 7, AmbientC: 22}, {AtUS: 7, AmbientC: 23},
	}); err == nil {
		t.Fatal("duplicate step times should fail")
	}
}

func TestAmbientScheduleDrivesModel(t *testing.T) {
	m := Note9(21)
	sched, err := NewAmbientSchedule([]AmbientStep{
		{AtUS: 0, AmbientC: 21},
		{AtUS: 1_000_000, AmbientC: 35},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	m.AmbientC = sched.At(0)
	m.Reset()
	zero := make([]float64, m.NumNodes())
	// With no injected power the network relaxes toward whatever the
	// schedule says ambient currently is.
	// The skin's time constant is ≈143 s; give it ~3τ past the step.
	for now := int64(0); now < 450_000_000; now += 5000 {
		m.AmbientC = sched.At(now)
		m.Step(0.005, zero)
	}
	if got := m.TempByName(NodeSkin); got < 32 {
		t.Fatalf("skin should warm toward the 35 °C ambient, got %.2f", got)
	}
}
