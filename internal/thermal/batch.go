package thermal

// Batch integrates k independent copies of one RC network in lockstep —
// the struct-of-arrays thermal state behind sim.BatchEngine. The
// network structure (node list, heat capacities, ambient conductances,
// sparse neighbor lists) is shared with the prototype Model; only the
// temperatures and the dT scratch are per-lane, laid out node-major:
// lane r of node i lives at temp[i*k+r], so the per-node inner loop
// walks contiguous memory across lanes while the edge list and
// coefficients are loaded once per node instead of once per lane.
//
// Per-lane arithmetic is the contract: for every lane, Step evaluates
// exactly the terms Model.Step evaluates, in the same order, so a batch
// lane is bit-identical to a scalar Model stepped with the same power
// sequence (pinned by TestBatchMatchesScalarModel).
type Batch struct {
	// AmbientC is the shared ambient; sim keeps it in sync with the
	// (validated-identical) ambient schedules of every lane.
	AmbientC float64

	k     int
	capJK []float64
	gAmb  []float64
	// The sparse neighbor lists, flattened: node i owns edgeCnt[i]
	// consecutive entries of edgeJK/edgeG (a shared cursor walks them in
	// node order). Neighbor indices are pre-multiplied by the lane count
	// so a temp-row lookup is one add; the flat layout is what the
	// vector kernel walks directly.
	edgeCnt []int64
	edgeJK  []int64
	edgeG   []float64
	temp    []float64 // node-major: node i, lane r at [i*k+r]
	dT      []float64
}

// NewBatch builds a k-lane batch over the prototype model's structure.
// Every lane starts at the prototype's ambient.
func NewBatch(m *Model, k int) *Batch {
	if k <= 0 {
		panic("thermal: batch needs at least one lane")
	}
	n := len(m.capJK)
	b := &Batch{
		AmbientC: m.AmbientC,
		k:        k,
		capJK:    m.capJK,
		gAmb:     m.gAmb,
		edgeCnt:  make([]int64, n),
		temp:     make([]float64, n*k),
		dT:       make([]float64, n*k),
	}
	for i, es := range m.nbrs {
		b.edgeCnt[i] = int64(len(es))
		for _, e := range es {
			b.edgeJK = append(b.edgeJK, int64(e.j*k))
			b.edgeG = append(b.edgeG, e.g)
		}
	}
	b.Reset()
	return b
}

// Lanes returns the lane count k.
func (b *Batch) Lanes() int { return b.k }

// NumNodes returns the node count of the shared structure.
func (b *Batch) NumNodes() int { return len(b.capJK) }

// TempC returns the temperature of node i in lane r.
func (b *Batch) TempC(i, r int) float64 { return b.temp[i*b.k+r] }

// Temps exposes the live node-major temperature storage (node i, lane r
// at index i*Lanes()+r). Callers may read it directly in hot loops but
// must not resize it; writes belong to Step/Reset.
func (b *Batch) Temps() []float64 { return b.temp }

// Reset returns every node of every lane to ambient.
func (b *Batch) Reset() {
	for i := range b.temp {
		b.temp[i] = b.AmbientC
	}
}

// Step advances every lane by dtSec. powerW is node-major like Temps:
// the injection into node i of lane r at powerW[i*Lanes()+r]. Length
// mismatches panic via bounds check, mirroring Model.Step.
func (b *Batch) Step(dtSec float64, powerW []float64) {
	powerW = powerW[:len(b.temp)]
	if useAVX2 && b.k >= 4 && b.k%4 == 0 {
		thermStepAVX2(b.temp, b.dT, powerW, b.gAmb, b.capJK, b.edgeG,
			b.edgeJK, b.edgeCnt, int64(b.k), b.AmbientC, dtSec)
		return
	}
	b.stepGo(dtSec, powerW)
}

// stepGo is the portable Step: edge-outer, lane-inner — each per-node
// pass is a short branch-free sweep over k contiguous lanes with every
// slice pre-cut to length k (so the bounds checks vanish), accumulating
// the flow terms into dT in exactly Model.Step's order — ambient loss
// first, then each neighbor edge ascending, then the capacity division.
// thermStepAVX2 runs the identical per-lane IEEE sequence four lanes at
// a time; TestThermStepAVX2MatchesGo pins the bit-level pairing.
func (b *Batch) stepGo(dtSec float64, powerW []float64) {
	k := b.k
	temp := b.temp
	dT := b.dT[:len(temp)]
	amb := b.AmbientC
	e0 := 0
	for i, cap := range b.capJK {
		gA := b.gAmb[i]
		base := i * k
		lane := temp[base:][:k:k]
		pw := powerW[base:][:k:k]
		out := dT[base:][:k:k]
		for r := range out {
			out[r] = pw[r] - gA*(lane[r]-amb)
		}
		for x := 0; x < int(b.edgeCnt[i]); x++ {
			g := b.edgeG[e0+x]
			row := temp[b.edgeJK[e0+x]:][:k:k]
			for r := range out {
				out[r] -= g * (lane[r] - row[r])
			}
		}
		e0 += int(b.edgeCnt[i])
		for r := range out {
			out[r] = out[r] / cap * dtSec
		}
	}
	for i := range temp {
		temp[i] += dT[i]
	}
}

// StructEqual reports whether two models share an identical network:
// same nodes in the same order, same heat capacities, ambient
// conductances, link conductances and ambient temperature. It is the
// compatibility check sim.NewBatch runs before folding k runs onto one
// shared structure.
func (m *Model) StructEqual(o *Model) bool {
	if m == o {
		return true
	}
	if len(m.names) != len(o.names) || m.AmbientC != o.AmbientC {
		return false
	}
	for i, name := range m.names {
		if o.names[i] != name || o.capJK[i] != m.capJK[i] || o.gAmb[i] != m.gAmb[i] {
			return false
		}
		for j := range m.g[i] {
			if m.g[i][j] != o.g[i][j] {
				return false
			}
		}
	}
	return true
}

// BlendEqual reports whether two virtual sensors read the same blend:
// same node indices with the same normalized weights. Models are not
// compared — sim.NewBatch checks those separately via StructEqual.
func (s *VirtualSensor) BlendEqual(o *VirtualSensor) bool {
	if len(s.indices) != len(o.indices) {
		return false
	}
	for i := range s.indices {
		if s.indices[i] != o.indices[i] || s.weights[i] != o.weights[i] {
			return false
		}
	}
	return true
}

// ReadBatchC returns the sensor's blended temperature for lane r of a
// batch, folding nodes in the same order (and therefore bit-identically)
// as ReadC does over a scalar model. The batch must share the structure
// of the sensor's model — sim.NewBatch validates this.
func (s *VirtualSensor) ReadBatchC(b *Batch, r int) float64 {
	var t float64
	for x, i := range s.indices {
		t += s.weights[x] * b.temp[i*b.k+r]
	}
	return t
}

// ReadAllBatchC fills dst[r] with the sensor's blended temperature for
// every lane r — node-outer so each weighted row is one contiguous
// sweep. Per lane the terms accumulate in the same ascending-node order
// as ReadBatchC and ReadC, so the values are bit-identical; dst must
// hold Lanes() elements.
func (s *VirtualSensor) ReadAllBatchC(b *Batch, dst []float64) {
	k := b.k
	dst = dst[:k:k]
	for r := range dst {
		dst[r] = 0
	}
	for x, i := range s.indices {
		w := s.weights[x]
		row := b.temp[i*k:][:k:k]
		for r := range dst {
			dst[r] += w * row[r]
		}
	}
}
