package thermal

import "nextdvfs/internal/cpufeat"

// useAVX2 gates the vectorized batch step. The kernel computes the
// exact IEEE-754 operation sequence of stepGo with each lane in one
// SIMD slot — per-lane temperatures stay bit-identical to the scalar
// Model. It requires the lane count to be a multiple of four; other
// widths take the Go path.
var useAVX2 = cpufeat.HasAVX2

// thermStepAVX2 is stepGo four lanes at a time over the flattened
// neighbor lists. All float slices are node-major with k lanes per
// node; k must be a positive multiple of 4.
//
//go:noescape
func thermStepAVX2(temp, dT, powerW, gAmb, capJK, edgeG []float64, edgeJK, edgeCnt []int64, k int64, amb, dtSec float64)
