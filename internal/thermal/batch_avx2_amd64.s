#include "textflag.h"

// func thermStepAVX2(temp, dT, powerW, gAmb, capJK, edgeG []float64,
//	edgeJK, edgeCnt []int64, k int64, amb, dtSec float64)
//
// The batched RC step, four lanes per iteration. Per lane this is the
// IEEE sequence of stepGo: for each node, flow = pw - gA*(t-amb), then
// flow -= g*(t - t_nbr) per neighbor in ascending order, then
// dT = flow/cap*dtSec; finally temp += dT across all nodes. DX walks
// the per-node lane rows of temp, DI the rows of dT, R8 the rows of
// powerW; R11/R12 walk the flattened edge arrays in node order.
TEXT ·thermStepAVX2(SB), NOSPLIT, $0-216
	MOVQ temp_base+0(FP), SI
	MOVQ dT_base+24(FP), DI
	MOVQ powerW_base+48(FP), R8
	MOVQ edgeG_base+120(FP), R11
	MOVQ edgeJK_base+144(FP), R12
	MOVQ edgeCnt_base+168(FP), R13
	MOVQ k+192(FP), R14
	MOVQ gAmb_len+80(FP), R15

	VBROADCASTSD amb+200(FP), Y0
	VBROADCASTSD dtSec+208(FP), Y1

	MOVQ SI, DX // lane-row cursor over temp
	XORQ BX, BX // node index

nodeloop:
	CMPQ BX, R15
	JGE  nodesdone

	// flow = pw - gA*(lane - amb)
	MOVQ gAmb_base+72(FP), R9
	VBROADCASTSD (R9)(BX*8), Y2
	XORQ CX, CX

pass1:
	VMOVUPD (DX)(CX*8), Y3
	VSUBPD  Y0, Y3, Y4  // lane - amb
	VMULPD  Y2, Y4, Y4  // gA * (lane - amb)
	VMOVUPD (R8)(CX*8), Y5
	VSUBPD  Y4, Y5, Y5  // pw - gA*(lane-amb)
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ    $4, CX
	CMPQ    CX, R14
	JL      pass1

	// flow -= g*(lane - neighbor), neighbors in ascending stored order
	MOVQ (R13)(BX*8), AX

edgeloop:
	TESTQ AX, AX
	JZ    edgesdone
	VBROADCASTSD (R11), Y2
	MOVQ  (R12), R9
	LEAQ  (SI)(R9*8), R9 // neighbor lane row
	XORQ  CX, CX

edgelanes:
	VMOVUPD (DX)(CX*8), Y3
	VMOVUPD (R9)(CX*8), Y4
	VSUBPD  Y4, Y3, Y4  // lane - neighbor
	VMULPD  Y2, Y4, Y4  // g * (lane - neighbor)
	VMOVUPD (DI)(CX*8), Y5
	VSUBPD  Y4, Y5, Y5  // flow -= ...
	VMOVUPD Y5, (DI)(CX*8)
	ADDQ    $4, CX
	CMPQ    CX, R14
	JL      edgelanes

	ADDQ $8, R11
	ADDQ $8, R12
	DECQ AX
	JMP  edgeloop

edgesdone:
	// dT = flow / cap * dtSec
	MOVQ capJK_base+96(FP), R9
	VBROADCASTSD (R9)(BX*8), Y2
	XORQ CX, CX

pass3:
	VMOVUPD (DI)(CX*8), Y3
	VDIVPD  Y2, Y3, Y3  // flow / cap
	VMULPD  Y1, Y3, Y3  // * dtSec
	VMOVUPD Y3, (DI)(CX*8)
	ADDQ    $4, CX
	CMPQ    CX, R14
	JL      pass3

	LEAQ (DX)(R14*8), DX
	LEAQ (DI)(R14*8), DI
	LEAQ (R8)(R14*8), R8
	INCQ BX
	JMP  nodeloop

nodesdone:
	// temp += dT over all n*k entries
	MOVQ dT_base+24(FP), DI
	MOVQ R15, AX
	IMULQ R14, AX
	XORQ CX, CX

addloop:
	VMOVUPD (SI)(CX*8), Y3
	VMOVUPD (DI)(CX*8), Y4
	VADDPD  Y4, Y3, Y3
	VMOVUPD Y3, (SI)(CX*8)
	ADDQ    $4, CX
	CMPQ    CX, AX
	JL      addloop

	VZEROUPPER
	RET
