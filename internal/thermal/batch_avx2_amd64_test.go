package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// The vector step must be bit-identical to the portable one: same
// nodes, same edge order, same IEEE sequence per lane. Two batches over
// the same network are driven from identical randomized temperatures
// with identical power injections — one through the kernel, one through
// stepGo — and every temperature must match to the bit at every step.
func TestThermStepAVX2MatchesGo(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable")
	}
	proto := Note9(23)
	for _, k := range []int{4, 8, 12} {
		va := NewBatch(proto, k)
		gb := NewBatch(proto, k)
		rng := rand.New(rand.NewSource(int64(k)))
		ta, tb := va.Temps(), gb.Temps()
		for i := range ta {
			v := 20 + 60*rng.Float64()
			ta[i], tb[i] = v, v
		}
		pw := make([]float64, len(ta))
		for step := 0; step < 500; step++ {
			for i := range pw {
				pw[i] = 4 * rng.Float64()
			}
			va.Step(0.001, pw)
			gb.stepGo(0.001, pw)
			for i := range ta {
				if math.Float64bits(ta[i]) != math.Float64bits(tb[i]) {
					t.Fatalf("k=%d step=%d temp[%d]: avx2 %v != go %v", k, step, i, ta[i], tb[i])
				}
			}
		}
	}
}
