//go:build !amd64

package thermal

// Off amd64 the vector kernel does not exist; useAVX2 is false and
// Step always takes the portable Go path. The stub keeps the package
// compiling on 386/arm64 crossbuilds.
var useAVX2 = false

func thermStepAVX2(temp, dT, powerW, gAmb, capJK, edgeG []float64, edgeJK, edgeCnt []int64, k int64, amb, dtSec float64) {
	panic("thermal: thermStepAVX2 unavailable on this architecture")
}
