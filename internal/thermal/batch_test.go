package thermal

import (
	"math/rand"
	"testing"
)

// TestBatchMatchesScalarModel pins the thermal half of the lockstep
// bit-identity contract: every lane of a Batch, fed its own power
// sequence, must integrate byte-identically to a scalar Model fed the
// same sequence.
func TestBatchMatchesScalarModel(t *testing.T) {
	const (
		k     = 4
		steps = 500
		dt    = 0.001
	)
	proto := Note9(25)
	batch := NewBatch(proto, k)
	n := proto.NumNodes()

	scalars := make([]*Model, k)
	for r := range scalars {
		scalars[r] = Note9(25)
	}

	rng := rand.New(rand.NewSource(3))
	scalarPow := make([][]float64, k)
	for r := range scalarPow {
		scalarPow[r] = make([]float64, n)
	}
	batchPow := make([]float64, n*k)
	for s := 0; s < steps; s++ {
		for r := 0; r < k; r++ {
			for i := 0; i < n; i++ {
				w := rng.Float64() * float64(r+1)
				scalarPow[r][i] = w
				batchPow[i*k+r] = w
			}
		}
		batch.Step(dt, batchPow)
		for r := 0; r < k; r++ {
			scalars[r].Step(dt, scalarPow[r])
		}
	}
	for r := 0; r < k; r++ {
		for i := 0; i < n; i++ {
			if got, want := batch.TempC(i, r), scalars[r].TempC(i); got != want {
				t.Fatalf("lane %d node %d diverged: batch %v scalar %v", r, i, got, want)
			}
		}
	}

	// The batched virtual sensor must fold the same blend.
	sensor := Note9DeviceSensor(proto)
	for r := 0; r < k; r++ {
		ref := Note9DeviceSensor(scalars[r])
		if got, want := sensor.ReadBatchC(batch, r), ref.ReadC(); got != want {
			t.Fatalf("lane %d sensor diverged: batch %v scalar %v", r, got, want)
		}
	}
}

func TestStructEqual(t *testing.T) {
	a, b := Note9(25), Note9(25)
	if !a.StructEqual(b) {
		t.Fatal("identically-built models must be StructEqual")
	}
	if !Note9DeviceSensor(a).BlendEqual(Note9DeviceSensor(b)) {
		t.Fatal("identically-built sensors must be BlendEqual")
	}
	c := Note9(30)
	if a.StructEqual(c) {
		t.Fatal("differing ambient must not be StructEqual")
	}
	d := NewModel(25, []NodeSpec{{Name: NodeBig, CapJPerK: 2, GAmbWPerK: 0.1}}, nil)
	if a.StructEqual(d) {
		t.Fatal("differing networks must not be StructEqual")
	}
}

// TestBatchReset pins that Reset returns every lane to the shared
// ambient, like Model.Reset does after an ambient-schedule run.
func TestBatchReset(t *testing.T) {
	b := NewBatch(Note9(21), 2)
	pow := make([]float64, b.NumNodes()*b.Lanes())
	for i := range pow {
		pow[i] = 2
	}
	for s := 0; s < 100; s++ {
		b.Step(0.01, pow)
	}
	b.AmbientC = 30
	b.Reset()
	for i := 0; i < b.NumNodes(); i++ {
		for r := 0; r < b.Lanes(); r++ {
			if b.TempC(i, r) != 30 {
				t.Fatalf("node %d lane %d = %v after Reset, want 30", i, r, b.TempC(i, r))
			}
		}
	}
}
