// Package thermal models heat flow in the handset as a lumped RC
// network: one node per PE cluster (big, LITTLE, GPU) plus a skin node
// (chassis, display, battery mass), all coupled to each other and to the
// ambient boundary through thermal conductances. Forward-Euler
// integration per simulation tick is numerically stable at the 1 ms tick
// the engine uses (dt·G/C ≪ 1 for every node).
//
// The Galaxy Note 9 exposes a big-cluster sensor and a "virtual" device
// sensor computed by a proprietary vendor formula; this package mirrors
// that with a direct node read for the big sensor and a weighted virtual
// sensor for the device temperature. Parameters are calibrated so that a
// sustained gaming load lands big-cluster temperatures in the paper's
// 55–75 °C band at the paper's 21 °C ambient (see DESIGN.md §2).
package thermal
