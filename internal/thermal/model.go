package thermal

import (
	"fmt"
	"sort"
)

// NodeSpec describes one thermal node.
type NodeSpec struct {
	Name string
	// CapJPerK is the lumped heat capacity in joules per kelvin.
	CapJPerK float64
	// GAmbWPerK is the direct conductance to ambient in watts per kelvin
	// (0 for nodes that only reach ambient through other nodes).
	GAmbWPerK float64
}

// Link couples two nodes with conductance GWPerK.
type Link struct {
	A, B   string
	GWPerK float64
}

// Model is a lumped RC thermal network. All node temperatures start at
// ambient. Construct with NewModel.
type Model struct {
	AmbientC float64

	names []string
	index map[string]int
	capJK []float64
	gAmb  []float64
	// g is the dense symmetric inter-node conductance matrix, kept as
	// the construction-time source of truth (duplicate links accumulate
	// here before the sparse lists are derived).
	g [][]float64
	// nbrs[i] is the precomputed sparse neighbor list of node i: the
	// non-zero entries of g[i] in ascending-j order. Step iterates these
	// instead of scanning the dense row, so the per-tick cost is
	// proportional to the edges that exist, and the skip-zero branch is
	// gone. Same terms in the same order as the dense scan — the
	// integration stays bit-identical (pinned by
	// TestStepMatchesDenseReference).
	nbrs  [][]edge
	tempC []float64
	// scratch for Step
	dT []float64
}

// edge is one precomputed conductance term of the RC network: neighbor
// node index plus the link conductance.
type edge struct {
	j int
	g float64
}

// NewModel builds a network from node specs and links. It panics on
// duplicate node names, unknown link endpoints, or non-positive heat
// capacities — all malformed-platform programming errors.
func NewModel(ambientC float64, nodes []NodeSpec, links []Link) *Model {
	m := &Model{
		AmbientC: ambientC,
		index:    make(map[string]int, len(nodes)),
	}
	for i, n := range nodes {
		if _, dup := m.index[n.Name]; dup {
			panic(fmt.Sprintf("thermal: duplicate node %q", n.Name))
		}
		if n.CapJPerK <= 0 {
			panic(fmt.Sprintf("thermal: node %q needs positive heat capacity", n.Name))
		}
		if n.GAmbWPerK < 0 {
			panic(fmt.Sprintf("thermal: node %q has negative ambient conductance", n.Name))
		}
		m.index[n.Name] = i
		m.names = append(m.names, n.Name)
		m.capJK = append(m.capJK, n.CapJPerK)
		m.gAmb = append(m.gAmb, n.GAmbWPerK)
		m.tempC = append(m.tempC, ambientC)
	}
	n := len(nodes)
	m.g = make([][]float64, n)
	for i := range m.g {
		m.g[i] = make([]float64, n)
	}
	for _, l := range links {
		a, okA := m.index[l.A]
		b, okB := m.index[l.B]
		if !okA || !okB {
			panic(fmt.Sprintf("thermal: link %q-%q references unknown node", l.A, l.B))
		}
		if l.GWPerK <= 0 {
			panic(fmt.Sprintf("thermal: link %q-%q needs positive conductance", l.A, l.B))
		}
		m.g[a][b] += l.GWPerK
		m.g[b][a] += l.GWPerK
	}
	m.nbrs = make([][]edge, n)
	for i := range m.g {
		for j, gij := range m.g[i] {
			if gij != 0 {
				m.nbrs[i] = append(m.nbrs[i], edge{j: j, g: gij})
			}
		}
	}
	m.dT = make([]float64, n)
	return m
}

// NumNodes returns the node count.
func (m *Model) NumNodes() int { return len(m.names) }

// Index returns the node index for name; the engine caches this so the
// per-tick path is map-free. The second result is false for unknown
// names.
func (m *Model) Index(name string) (int, bool) {
	i, ok := m.index[name]
	return i, ok
}

// MustIndex is Index but panics on unknown names.
func (m *Model) MustIndex(name string) int {
	i, ok := m.index[name]
	if !ok {
		panic(fmt.Sprintf("thermal: unknown node %q", name))
	}
	return i
}

// TempC returns the temperature of node i in °C.
func (m *Model) TempC(i int) float64 { return m.tempC[i] }

// TempByName returns the temperature of the named node.
func (m *Model) TempByName(name string) float64 { return m.tempC[m.MustIndex(name)] }

// SetTempC forces node i to a temperature (test hook / sensor fault
// injection).
func (m *Model) SetTempC(i int, t float64) { m.tempC[i] = t }

// Reset returns every node to ambient.
func (m *Model) Reset() {
	for i := range m.tempC {
		m.tempC[i] = m.AmbientC
	}
}

// Step advances the network by dtSec with the given per-node power
// injection (powerW indexed like the nodes; missing/extra entries are a
// programming error and panic via bounds check).
func (m *Model) Step(dtSec float64, powerW []float64) {
	if len(powerW) != len(m.tempC) {
		panic(fmt.Sprintf("thermal: Step got %d powers for %d nodes", len(powerW), len(m.tempC)))
	}
	// Hoist the field loads and pin slice lengths so the integration
	// loop keeps everything in registers and drops its bounds checks;
	// the arithmetic is untouched (term order is the bit-identity
	// contract pinned by TestStepMatchesDenseReference).
	temp := m.tempC
	powerW = powerW[:len(temp)]
	dT := m.dT[:len(temp)]
	gAmb := m.gAmb[:len(temp)]
	capJK := m.capJK[:len(temp)]
	amb := m.AmbientC
	for i, ti := range temp {
		flow := powerW[i] - gAmb[i]*(ti-amb)
		for _, e := range m.nbrs[i] {
			flow -= e.g * (ti - temp[e.j])
		}
		dT[i] = flow / capJK[i] * dtSec
	}
	for i := range temp {
		temp[i] += dT[i]
	}
}

// SteadyState iterates Step with constant power until the largest
// per-second temperature derivative drops below tolKPerS, and returns
// the node temperatures. Intended for calibration and tests, not the
// simulation hot path.
func (m *Model) SteadyState(powerW []float64, tolKPerS float64) []float64 {
	const dt = 0.05
	for iter := 0; iter < 2_000_000; iter++ {
		prev := make([]float64, len(m.tempC))
		copy(prev, m.tempC)
		m.Step(dt, powerW)
		maxRate := 0.0
		for i := range m.tempC {
			r := (m.tempC[i] - prev[i]) / dt
			if r < 0 {
				r = -r
			}
			if r > maxRate {
				maxRate = r
			}
		}
		if maxRate < tolKPerS {
			break
		}
	}
	out := make([]float64, len(m.tempC))
	copy(out, m.tempC)
	return out
}

// VirtualSensor is a weighted blend of node temperatures, mirroring the
// Note 9's proprietary "device temperature" formula.
type VirtualSensor struct {
	model   *Model
	indices []int
	weights []float64
}

// NewVirtualSensor builds a sensor from node-name weights. Weights are
// normalized to sum to 1. Nodes are folded in sorted-name order so two
// sensors built from equal maps blend identically bit-for-bit — map
// iteration order would otherwise leak ULP-level noise into the device
// temperature and break byte-identical reruns.
func NewVirtualSensor(m *Model, weights map[string]float64) *VirtualSensor {
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	s := &VirtualSensor{model: m}
	var sum float64
	for _, name := range names {
		w := weights[name]
		if w <= 0 {
			panic(fmt.Sprintf("thermal: sensor weight for %q must be positive", name))
		}
		s.indices = append(s.indices, m.MustIndex(name))
		s.weights = append(s.weights, w)
		sum += w
	}
	if sum == 0 {
		panic("thermal: virtual sensor needs at least one weight")
	}
	for i := range s.weights {
		s.weights[i] /= sum
	}
	return s
}

// ReadC returns the blended temperature in °C.
func (s *VirtualSensor) ReadC() float64 {
	var t float64
	for k, i := range s.indices {
		t += s.weights[k] * s.model.TempC(i)
	}
	return t
}
