package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func powers(m *Model, w map[string]float64) []float64 {
	p := make([]float64, m.NumNodes())
	for name, v := range w {
		p[m.MustIndex(name)] = v
	}
	return p
}

func TestNodesStartAtAmbient(t *testing.T) {
	m := Note9(21)
	for i := 0; i < m.NumNodes(); i++ {
		if m.TempC(i) != 21 {
			t.Fatalf("node %d starts at %g, want 21", i, m.TempC(i))
		}
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	m := Note9(21)
	p := make([]float64, m.NumNodes())
	for i := 0; i < 10_000; i++ {
		m.Step(0.001, p)
	}
	for i := 0; i < m.NumNodes(); i++ {
		if math.Abs(m.TempC(i)-21) > 1e-9 {
			t.Fatalf("node %d drifted to %g with zero power", i, m.TempC(i))
		}
	}
}

func TestHeatingAndCooling(t *testing.T) {
	m := Note9(21)
	hot := powers(m, map[string]float64{NodeBig: 4.0})
	for i := 0; i < 30_000; i++ { // 30 s
		m.Step(0.001, hot)
	}
	heated := m.TempByName(NodeBig)
	if heated <= 30 {
		t.Fatalf("big should heat well above ambient, got %.1f", heated)
	}
	cool := make([]float64, m.NumNodes())
	for i := 0; i < 30_000; i++ {
		m.Step(0.001, cool)
	}
	cooled := m.TempByName(NodeBig)
	if cooled >= heated {
		t.Fatalf("big should cool after power removal: %.1f -> %.1f", heated, cooled)
	}
	if cooled < 21-1e-6 {
		t.Fatalf("cooling undershot ambient: %.2f", cooled)
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	// Property: more big-cluster power → higher big steady temperature.
	prev := 0.0
	for _, w := range []float64{0.5, 1, 2, 4, 6} {
		m := Note9(21)
		temps := m.SteadyState(powers(m, map[string]float64{NodeBig: w}), 0.001)
		tb := temps[m.MustIndex(NodeBig)]
		if tb <= prev {
			t.Fatalf("steady big temp not monotone: %.2f at %g W (prev %.2f)", tb, w, prev)
		}
		prev = tb
	}
}

func TestGamingSteadyStateInPaperBand(t *testing.T) {
	// Calibration check: sustained gaming load (big 3.5 W, GPU 2.5 W,
	// LITTLE 0.4 W, skin 0.6 W from display) lands the big sensor in the
	// paper's 55-75 °C band at 21 °C ambient, with the device sensor
	// noticeably cooler.
	m := Note9(21)
	temps := m.SteadyState(powers(m, map[string]float64{
		NodeBig: 3.5, NodeGPU: 2.5, NodeLITTLE: 0.4, NodeSkin: 0.6,
	}), 0.0005)
	big := temps[m.MustIndex(NodeBig)]
	if big < 55 || big > 75 {
		t.Fatalf("gaming steady big temp = %.1f °C, want 55-75", big)
	}
	dev := Note9DeviceSensor(m).ReadC()
	if dev >= big {
		t.Fatalf("device sensor (%.1f) should read below big hot spot (%.1f)", dev, big)
	}
	if dev < 30 || dev > 60 {
		t.Fatalf("gaming device temp = %.1f °C, want 30-60", dev)
	}
}

func TestBigIsHotSpot(t *testing.T) {
	// With the same power injected, the big node (higher R to skin than
	// GPU in our calibration is not guaranteed) — instead verify the
	// paper's actual claim: under a CPU-heavy load the big cluster is
	// the hottest node.
	m := Note9(21)
	temps := m.SteadyState(powers(m, map[string]float64{
		NodeBig: 3.0, NodeLITTLE: 0.5, NodeGPU: 0.8, NodeSkin: 0.6,
	}), 0.001)
	big := temps[m.MustIndex(NodeBig)]
	for _, n := range []string{NodeLITTLE, NodeGPU, NodeSkin} {
		if temps[m.MustIndex(n)] >= big {
			t.Fatalf("big should be the hot spot: big=%.1f, %s=%.1f", big, n, temps[m.MustIndex(n)])
		}
	}
}

func TestEnergyConservationAtEquilibrium(t *testing.T) {
	// At steady state, power in == power out to ambient (within tol).
	m := Note9(21)
	in := powers(m, map[string]float64{NodeBig: 2.0, NodeGPU: 1.0})
	m.SteadyState(in, 0.0001)
	// Only skin has ambient conductance in the Note9 preset.
	skin := m.MustIndex(NodeSkin)
	out := (m.TempC(skin) - 21) * (1 / 2.6)
	if math.Abs(out-3.0) > 0.1 {
		t.Fatalf("steady heat outflow %.3f W, want ≈3.0 W", out)
	}
}

func TestStepStabilityAt1msTick(t *testing.T) {
	// Forward Euler must not oscillate/diverge at the engine tick.
	m := Note9(21)
	p := powers(m, map[string]float64{NodeBig: 8.0, NodeGPU: 3.5, NodeLITTLE: 1.2, NodeSkin: 0.9})
	prevBig := m.TempByName(NodeBig)
	for i := 0; i < 200_000; i++ { // 200 s of worst-case power
		m.Step(0.001, p)
		b := m.TempByName(NodeBig)
		if math.IsNaN(b) || b > 200 {
			t.Fatalf("diverged at step %d: %.1f", i, b)
		}
		if b < prevBig-0.5 {
			t.Fatalf("oscillation at step %d: %.2f -> %.2f", i, prevBig, b)
		}
		prevBig = b
	}
}

func TestVirtualSensorWeights(t *testing.T) {
	m := Note9(21)
	m.SetTempC(m.MustIndex(NodeBig), 80)
	m.SetTempC(m.MustIndex(NodeLITTLE), 40)
	m.SetTempC(m.MustIndex(NodeGPU), 60)
	m.SetTempC(m.MustIndex(NodeSkin), 35)
	s := Note9DeviceSensor(m)
	got := s.ReadC()
	want := 0.60*35 + 0.20*80 + 0.12*60 + 0.08*40
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("virtual sensor = %.3f, want %.3f", got, want)
	}
}

func TestVirtualSensorBoundedByNodeTemps(t *testing.T) {
	// Property: a convex blend can never leave [minTemp, maxTemp].
	rng := rand.New(rand.NewSource(5))
	f := func(a, b, c, d uint8) bool {
		m := Note9(21)
		temps := []float64{float64(a) + 20, float64(b) + 20, float64(c) + 20, float64(d) + 20}
		lo, hi := temps[0], temps[0]
		for i, tv := range temps {
			m.SetTempC(i, tv)
			if tv < lo {
				lo = tv
			}
			if tv > hi {
				hi = tv
			}
		}
		r := Note9DeviceSensor(m).ReadC()
		return r >= lo-1e-9 && r <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidationPanics(t *testing.T) {
	node := NodeSpec{Name: "a", CapJPerK: 1}
	for _, tt := range []struct {
		name string
		fn   func()
	}{
		{"duplicate node", func() { NewModel(21, []NodeSpec{node, node}, nil) }},
		{"bad capacity", func() { NewModel(21, []NodeSpec{{Name: "a"}}, nil) }},
		{"unknown link", func() {
			NewModel(21, []NodeSpec{node}, []Link{{A: "a", B: "zzz", GWPerK: 1}})
		}},
		{"bad conductance", func() {
			NewModel(21, []NodeSpec{node, {Name: "b", CapJPerK: 1}}, []Link{{A: "a", B: "b", GWPerK: 0}})
		}},
		{"step power mismatch", func() {
			m := NewModel(21, []NodeSpec{node}, nil)
			m.Step(0.001, []float64{1, 2})
		}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestReset(t *testing.T) {
	m := Note9(21)
	m.SetTempC(0, 99)
	m.Reset()
	if m.TempC(0) != 21 {
		t.Fatal("reset failed")
	}
}

func TestIndexLookup(t *testing.T) {
	m := Note9(21)
	if _, ok := m.Index(NodeBig); !ok {
		t.Fatal("big index missing")
	}
	if _, ok := m.Index("nope"); ok {
		t.Fatal("unknown index should fail")
	}
}
