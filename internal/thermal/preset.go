package thermal

// Node names used by the handset presets.
const (
	NodeBig    = "big"
	NodeLITTLE = "LITTLE"
	NodeGPU    = "GPU"
	NodeSkin   = "skin"
)

// Note9 returns the thermal network calibrated for the Galaxy Note 9 at
// the given ambient (the paper's controlled ambient is 21 °C):
//
//   - die nodes (big/LITTLE/GPU) with small capacities → tens-of-seconds
//     heating transients like the paper's temperature traces;
//   - a heavy skin node (chassis+display+battery) reaching ambient;
//   - big↔GPU die coupling (adjacent hot spots).
//
// Calibration targets: a sustained game (~3.5 W big, ~2.5 W GPU) settles
// the big sensor in the 55–75 °C band; light usage stays near 35–45 °C.
func Note9(ambientC float64) *Model {
	return NewModel(ambientC,
		[]NodeSpec{
			{Name: NodeBig, CapJPerK: 2.0},
			{Name: NodeLITTLE, CapJPerK: 1.6},
			{Name: NodeGPU, CapJPerK: 2.4},
			{Name: NodeSkin, CapJPerK: 55, GAmbWPerK: 1 / 2.6}, // R_skin-amb ≈ 2.6 K/W
		},
		[]Link{
			{A: NodeBig, B: NodeSkin, GWPerK: 1 / 7.0},    // R ≈ 7.0 K/W
			{A: NodeLITTLE, B: NodeSkin, GWPerK: 1 / 7.0}, // R ≈ 7.0 K/W
			{A: NodeGPU, B: NodeSkin, GWPerK: 1 / 5.0},    // R ≈ 5.0 K/W
			{A: NodeBig, B: NodeGPU, GWPerK: 1 / 9.0},     // die-adjacent coupling
			{A: NodeBig, B: NodeLITTLE, GWPerK: 1 / 12.0},
		},
	)
}

// Flagship returns the thermal network of a vapor-chamber flagship
// (Snapdragon-855 class): a heavier, better-spread chassis than the
// Note 9 — more skin capacity, lower die→skin and skin→ambient
// resistances — so the same power settles a few degrees cooler.
func Flagship(ambientC float64) *Model {
	return NewModel(ambientC,
		[]NodeSpec{
			{Name: NodeBig, CapJPerK: 1.8},
			{Name: NodeLITTLE, CapJPerK: 1.5},
			{Name: NodeGPU, CapJPerK: 2.2},
			{Name: NodeSkin, CapJPerK: 62, GAmbWPerK: 1 / 2.4}, // vapor chamber spreads to a bigger radiating area
		},
		[]Link{
			{A: NodeBig, B: NodeSkin, GWPerK: 1 / 6.0},
			{A: NodeLITTLE, B: NodeSkin, GWPerK: 1 / 6.2},
			{A: NodeGPU, B: NodeSkin, GWPerK: 1 / 4.4},
			{A: NodeBig, B: NodeGPU, GWPerK: 1 / 8.5},
			{A: NodeBig, B: NodeLITTLE, GWPerK: 1 / 11.0},
		},
	)
}

// Midrange returns the thermal network of a plastic-bodied mid-range
// handset: a lighter chassis with graphite-sheet spreading only, so the
// skin saturates sooner — but the SoC underneath also burns less.
func Midrange(ambientC float64) *Model {
	return NewModel(ambientC,
		[]NodeSpec{
			{Name: NodeBig, CapJPerK: 1.4},
			{Name: NodeLITTLE, CapJPerK: 1.8},
			{Name: NodeGPU, CapJPerK: 1.6},
			{Name: NodeSkin, CapJPerK: 42, GAmbWPerK: 1 / 3.0},
		},
		[]Link{
			{A: NodeBig, B: NodeSkin, GWPerK: 1 / 8.5},
			{A: NodeLITTLE, B: NodeSkin, GWPerK: 1 / 7.5},
			{A: NodeGPU, B: NodeSkin, GWPerK: 1 / 6.0},
			{A: NodeBig, B: NodeGPU, GWPerK: 1 / 10.0},
			{A: NodeBig, B: NodeLITTLE, GWPerK: 1 / 13.0},
		},
	)
}

// HandsetDeviceSensor returns the generic device-temperature virtual
// sensor used by the non-Note9 platform presets: skin-dominated with
// die contributions, the same shape vendors expose as "device
// temperature".
func HandsetDeviceSensor(m *Model) *VirtualSensor {
	return NewVirtualSensor(m, map[string]float64{
		NodeSkin:   0.62,
		NodeBig:    0.18,
		NodeGPU:    0.12,
		NodeLITTLE: 0.08,
	})
}

// Note9DeviceSensor returns the virtual "device temperature" sensor for
// a Note9 model: dominated by the skin with contributions from the die —
// a stand-in for the vendor's proprietary formula.
func Note9DeviceSensor(m *Model) *VirtualSensor {
	return NewVirtualSensor(m, map[string]float64{
		NodeSkin:   0.60,
		NodeBig:    0.20,
		NodeGPU:    0.12,
		NodeLITTLE: 0.08,
	})
}
