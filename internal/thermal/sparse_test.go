package thermal

import (
	"math/rand"
	"testing"
)

// denseStepReference replays the pre-optimization dense-matrix Step on
// a shadow temperature vector: scan the full conductance row and skip
// zeros. The production Step must match it bit-for-bit — the sparse
// neighbor lists are an exact-caching optimization, not an
// approximation.
func denseStepReference(m *Model, tempC []float64, dtSec float64, powerW []float64) {
	dT := make([]float64, len(tempC))
	for i := range tempC {
		flow := powerW[i] - m.gAmb[i]*(tempC[i]-m.AmbientC)
		row := m.g[i]
		ti := tempC[i]
		for j, gij := range row {
			if gij != 0 {
				flow -= gij * (ti - tempC[j])
			}
		}
		dT[i] = flow / m.capJK[i] * dtSec
	}
	for i := range tempC {
		tempC[i] += dT[i]
	}
}

func TestStepMatchesDenseReference(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func() *Model
	}{
		{"note9", func() *Model { return Note9(21) }},
		{"flagship", func() *Model { return Flagship(21) }},
		{"midrange", func() *Model { return Midrange(25) }},
	} {
		m := build.mk()
		n := m.NumNodes()
		shadow := make([]float64, n)
		for i := 0; i < n; i++ {
			shadow[i] = m.TempC(i)
		}
		rng := rand.New(rand.NewSource(7))
		power := make([]float64, n)
		for step := 0; step < 5000; step++ {
			for i := range power {
				power[i] = 4 * rng.Float64()
			}
			m.Step(0.001, power)
			denseStepReference(m, shadow, 0.001, power)
			for i := 0; i < n; i++ {
				if m.TempC(i) != shadow[i] {
					t.Fatalf("%s: node %d diverged at step %d: sparse %v dense %v",
						build.name, i, step, m.TempC(i), shadow[i])
				}
			}
		}
	}
}

// TestNeighborListsMirrorMatrix pins the derivation: every non-zero
// dense entry appears exactly once, in ascending-j order, including
// duplicate links folded into one conductance.
func TestNeighborListsMirrorMatrix(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "a", CapJPerK: 1},
		{Name: "b", CapJPerK: 1},
		{Name: "c", CapJPerK: 1, GAmbWPerK: 0.5},
	}
	links := []Link{
		{A: "a", B: "b", GWPerK: 1.5},
		{A: "b", B: "a", GWPerK: 0.5}, // duplicate pair, must accumulate
		{A: "b", B: "c", GWPerK: 2},
	}
	m := NewModel(20, nodes, links)
	for i := range m.g {
		var want []edge
		for j, gij := range m.g[i] {
			if gij != 0 {
				want = append(want, edge{j: j, g: gij})
			}
		}
		got := m.nbrs[i]
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("node %d neighbor %d: got %+v want %+v", i, k, got[k], want[k])
			}
		}
	}
	if got := m.g[0][1]; got != 2.0 {
		t.Fatalf("duplicate links must accumulate: g[a][b] = %v, want 2", got)
	}
}

func TestStepZeroAlloc(t *testing.T) {
	m := Note9(21)
	power := make([]float64, m.NumNodes())
	for i := range power {
		power[i] = 1.5
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Step(0.001, power)
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %v per call, want 0", allocs)
	}
}
