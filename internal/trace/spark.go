package trace

import (
	"math"
	"strings"

	"nextdvfs/internal/sim"
)

// sparkLevels are the eighth-block glyphs used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width ASCII(-art) strip — the
// terminal-friendly plot cmd/nextsim prints next to a session summary.
// Values are min-max normalized; width ≤ 0 uses one glyph per value,
// otherwise the series is bucketed (bucket mean) to the given width.
// Non-finite values render at the baseline and are excluded from the
// normalization range — a single NaN sample (converting int(NaN) is
// platform-dependent in Go) must never panic the printer or flatten the
// rest of the trace.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	series := values
	if width > 0 && len(values) > width {
		series = bucketMeans(values, width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	b.Grow(len(series) * 3)
	span := hi - lo
	for _, v := range series {
		idx := 0
		switch {
		case math.IsNaN(v) || v <= lo || !(span > 0) || math.IsInf(span, 0):
			// Baseline: non-finite samples, the minimum, constant series
			// (span 0) and all-non-finite series (span -Inf or NaN).
		case v >= hi:
			idx = len(sparkLevels) - 1
		default:
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx > len(sparkLevels)-1 {
				idx = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

func bucketMeans(values []float64, width int) []float64 {
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		var sum float64
		for _, v := range values[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

// SampleSeries extracts a named series from samples for sparkline
// rendering: "fps", "power", "tempbig", "tempdev".
func SampleSeries(samples []sim.Sample, field string) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		switch field {
		case "fps":
			out = append(out, s.FPS)
		case "power":
			out = append(out, s.PowerW)
		case "tempbig":
			out = append(out, s.TempBigC)
		case "tempdev":
			out = append(out, s.TempDevC)
		}
	}
	return out
}
