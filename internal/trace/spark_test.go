package trace

import (
	"math"
	"strings"
	"testing"

	"nextdvfs/internal/sim"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp rendered %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5}, 0)
	if flat != "▁▁▁" {
		t.Fatalf("flat series rendered %q", flat)
	}
}

func TestSparklineBucketsToWidth(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	s := Sparkline(values, 20)
	if n := len([]rune(s)); n != 20 {
		t.Fatalf("width = %d, want 20", n)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Fatalf("ramp endpoints wrong: %q", s)
	}
}

func TestSparklineShorterThanWidth(t *testing.T) {
	s := Sparkline([]float64{1, 2}, 50)
	if n := len([]rune(s)); n != 2 {
		t.Fatalf("short series should not be padded: %d glyphs", n)
	}
}

func TestSampleSeries(t *testing.T) {
	samples := []sim.Sample{
		{FPS: 30, PowerW: 2, TempBigC: 40, TempDevC: 30},
		{FPS: 60, PowerW: 4, TempBigC: 50, TempDevC: 35},
	}
	if got := SampleSeries(samples, "fps"); got[0] != 30 || got[1] != 60 {
		t.Fatalf("fps series = %v", got)
	}
	if got := SampleSeries(samples, "power"); got[1] != 4 {
		t.Fatalf("power series = %v", got)
	}
	if got := SampleSeries(samples, "tempbig"); got[0] != 40 {
		t.Fatalf("tempbig series = %v", got)
	}
	if got := SampleSeries(samples, "tempdev"); got[1] != 35 {
		t.Fatalf("tempdev series = %v", got)
	}
	if got := SampleSeries(samples, "unknown"); len(got) != 0 {
		t.Fatalf("unknown field should be empty, got %v", got)
	}
	if !strings.Contains(Sparkline(SampleSeries(samples, "fps"), 0), "█") {
		t.Fatal("composed sparkline missing peak glyph")
	}
}

func TestSparklineNonFiniteSamples(t *testing.T) {
	// A NaN sample must render at the baseline without panicking
	// (int(NaN) is platform-dependent) and must not flatten the rest.
	s := Sparkline([]float64{0, math.NaN(), 7}, 0)
	if s != "▁▁█" {
		t.Fatalf("NaN series rendered %q", s)
	}
	// Infinities clamp to the extremes instead of poisoning the range.
	s = Sparkline([]float64{0, math.Inf(1), 7}, 0)
	if r := []rune(s); r[1] != '█' || r[0] != '▁' {
		t.Fatalf("+Inf series rendered %q", s)
	}
	s = Sparkline([]float64{0, math.Inf(-1), 7}, 0)
	if r := []rune(s); r[1] != '▁' || r[2] != '█' {
		t.Fatalf("-Inf series rendered %q", s)
	}
	// All-NaN series: every glyph at the baseline, no panic.
	s = Sparkline([]float64{math.NaN(), math.NaN()}, 0)
	if s != "▁▁" {
		t.Fatalf("all-NaN series rendered %q", s)
	}
	// NaN survives bucketing (a poisoned bucket mean is still NaN).
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = float64(i)
	}
	vals[3] = math.NaN()
	s = Sparkline(vals, 10)
	if n := len([]rune(s)); n != 10 {
		t.Fatalf("bucketed NaN series width %d", n)
	}
	if r := []rune(s); r[0] != '▁' || r[9] != '█' {
		t.Fatalf("bucketed NaN series rendered %q", s)
	}
}

func TestSparklineSingleValue(t *testing.T) {
	if s := Sparkline([]float64{3.14}, 10); s != "▁" {
		t.Fatalf("single value rendered %q", s)
	}
}
