// Package trace exports simulation traces and experiment tables as CSV,
// the format the figure-reproduction harness emits so results can be
// plotted next to the paper's figures.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"nextdvfs/internal/sim"
)

// WriteCSV writes a header and string rows.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("trace: row has %d fields, header has %d", len(r), len(header))
		}
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SamplesHeader returns the column names for WriteSamples given the
// chip's cluster names in order.
func SamplesHeader(clusters []string) []string {
	h := []string{"time_s", "app", "interaction", "fps", "power_w", "temp_big_c", "temp_dev_c"}
	for _, c := range clusters {
		h = append(h, "freq_mhz_"+c)
	}
	for _, c := range clusters {
		h = append(h, "util_"+c)
	}
	return h
}

// WriteSamples emits one CSV row per recorded sample.
func WriteSamples(w io.Writer, clusters []string, samples []sim.Sample) error {
	header := SamplesHeader(clusters)
	rows := make([][]string, 0, len(samples))
	for _, s := range samples {
		if len(s.FreqKHz) != len(clusters) || len(s.Util) != len(clusters) {
			return fmt.Errorf("trace: sample has %d clusters, expected %d", len(s.FreqKHz), len(clusters))
		}
		row := []string{
			formatFloat(float64(s.TimeUS) / 1e6),
			s.App,
			s.Interaction,
			formatFloat(s.FPS),
			formatFloat(s.PowerW),
			formatFloat(s.TempBigC),
			formatFloat(s.TempDevC),
		}
		for _, khz := range s.FreqKHz {
			row = append(row, formatFloat(float64(khz)/1000))
		}
		for _, u := range s.Util {
			row = append(row, formatFloat(u))
		}
		rows = append(rows, row)
	}
	return WriteCSV(w, header, rows)
}

// SaveSamples writes the samples CSV to a file path.
func SaveSamples(path string, clusters []string, samples []sim.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteSamples(f, clusters, samples)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
