package trace

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nextdvfs/internal/sim"
)

func sampleFixture() []sim.Sample {
	return []sim.Sample{
		{
			TimeUS: 1_000_000, App: "facebook", Interaction: "scroll",
			FPS: 58.5, PowerW: 3.25, TempBigC: 42.1, TempDevC: 33.0,
			FreqKHz: []int{1794_000, 949_000, 455_000},
			CapIdx:  []int{10, 5, 3},
			Util:    []float64{0.61, 0.3, 0.8},
		},
		{
			TimeUS: 2_000_000, App: "facebook", Interaction: "idle",
			FPS: 0, PowerW: 2.0, TempBigC: 40.0, TempDevC: 32.5,
			FreqKHz: []int{650_000, 455_000, 260_000},
			CapIdx:  []int{3, 2, 1},
			Util:    []float64{0.2, 0.1, 0.0},
		},
	}
}

func TestWriteSamplesCSV(t *testing.T) {
	var buf bytes.Buffer
	clusters := []string{"big", "LITTLE", "GPU"}
	if err := WriteSamples(&buf, clusters, sampleFixture()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 { // header + 2 rows
		t.Fatalf("records = %d", len(records))
	}
	header := records[0]
	if header[0] != "time_s" || header[7] != "freq_mhz_big" {
		t.Fatalf("header = %v", header)
	}
	if records[1][1] != "facebook" || records[1][2] != "scroll" {
		t.Fatalf("row = %v", records[1])
	}
	// Frequency converted kHz → MHz.
	if records[1][7] != "1794.0000" {
		t.Fatalf("freq cell = %q", records[1][7])
	}
}

func TestWriteSamplesClusterMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSamples(&buf, []string{"big"}, sampleFixture())
	if err == nil {
		t.Fatal("mismatched cluster count should fail")
	}
}

func TestWriteCSVRowWidthValidation(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1"}})
	if err == nil {
		t.Fatal("short row should fail")
	}
}

func TestSaveSamples(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := SaveSamples(path, []string{"big", "LITTLE", "GPU"}, sampleFixture()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,app,interaction") {
		t.Fatalf("file content: %.80s", data)
	}
}
