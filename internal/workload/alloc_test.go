package workload

import (
	"math/rand"
	"testing"
)

// TestAppHotPathZeroAlloc pins the workload side of the zero-alloc tick
// loop: Tick and StartFrame are called every simulated millisecond and
// must never touch the heap.
func TestAppHotPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, app := range EvaluationApps() {
		app.Reset()
		now := int64(0)
		inters := []Interaction{InterIdle, InterScroll, InterWatch, InterPlay, InterLoading, InterOff, InterTouch}
		i := 0
		allocs := testing.AllocsPerRun(500, func() {
			now += 1000
			d := app.Tick(now, 1000, inters[i%len(inters)], rng)
			if d.WantFrame {
				app.StartFrame(inters[i%len(inters)], rng)
			}
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: Tick/StartFrame allocates %v per tick, want 0", app.Name(), allocs)
		}
	}
}
