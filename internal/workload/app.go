package workload

import (
	"fmt"
	"math/rand"
)

// Class is the application category; the Int. QoS PM baseline only
// manages games, so the class is part of the public contract.
type Class int

// Application classes.
const (
	ClassLauncher Class = iota
	ClassSocial
	ClassMusic
	ClassBrowser
	ClassGame
	ClassVideo
)

var classNames = [...]string{"launcher", "social", "music", "browser", "game", "video"}

// String returns the lowercase class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Interaction is the user's instantaneous mode of engagement with the
// display/UI. The session package emits a timeline of interactions; the
// app maps them to frame demand.
type Interaction int

// Interaction states.
const (
	// InterIdle: app in foreground, user looking but not touching (or
	// screen static — e.g. music playing). No frames demanded.
	InterIdle Interaction = iota
	// InterTouch: discrete tap (button, like, pause); short frame burst.
	InterTouch
	// InterScroll: continuous fling/drag; frames at full refresh rate.
	InterScroll
	// InterWatch: media playback; frames at the content's rate.
	InterWatch
	// InterPlay: active gameplay; continuous render loop.
	InterPlay
	// InterLoading: app start / level load; splash screen with heavy CPU
	// work and no frame production (FPS ≈ 0 at high load — the case the
	// paper uses to break utilization-driven management).
	InterLoading
	// InterOff: screen off with the app still foreground-resident — the
	// pocketed-phone state the paper counts among its user-interaction
	// signals. No frames are produced or expected; background work (audio
	// playback, sync) keeps running at the app's idle rate, and the
	// engine sheds the display's share of base power.
	InterOff
)

var interNames = [...]string{"idle", "touch", "scroll", "watch", "play", "loading", "off"}

// String returns the lowercase interaction name.
func (i Interaction) String() string {
	if int(i) < len(interNames) {
		return interNames[i]
	}
	return fmt.Sprintf("Interaction(%d)", int(i))
}

// FrameJob is the rendering cost of one frame in work units. A work
// unit is one core-cycle at IPC 1; a cluster drains
// f × IPC × parallelism units per second.
type FrameJob struct {
	CPUWork     float64 // render-thread work on the big cluster
	GPUWork     float64 // rasterization/composition on the GPU
	Parallelism float64 // effective cores the CPU stage can use
}

// Demand is what the app asks of the platform on a given tick.
type Demand struct {
	// WantFrame reports a frame is ready to start rendering.
	WantFrame bool
	// BigBg/LittleBg/GPUBg are background demands expressed as a
	// fraction of the cluster's MAXIMUM capacity — i.e. a fixed
	// operations-per-second rate independent of the current frequency
	// (audio decode, network, prefetch, game logic, video decode do the
	// same work regardless of clock). Inelastic demand is what makes a
	// utilization governor hold frequency up at zero FPS, the waste the
	// paper measures; at low clocks the same demand saturates the
	// cluster instead.
	BigBg    float64
	LittleBg float64
	GPUBg    float64
}

// App is a mobile application instance participating in a session. Apps
// are stateful (video cadence, loading progress) and single-session;
// call Reset before reuse.
type App interface {
	// Name is the Play-store-style identity used to key Q-tables.
	Name() string
	// Class is the app category.
	Class() Class
	// Tick advances internal state by dtUS at nowUS under the given
	// interaction and returns the instantaneous demand.
	Tick(nowUS, dtUS int64, inter Interaction, rng *rand.Rand) Demand
	// StartFrame draws the next frame's cost; the engine calls it
	// exactly once per frame it begins rendering, which also clears any
	// pending cadence demand.
	StartFrame(inter Interaction, rng *rand.Rand) FrameJob
	// Reset restores pristine state for a new session.
	Reset()
}
