// Package workload models mobile applications as the paper
// characterizes them: dynamic programs whose frame demand and CPU/GPU
// load vary with the user's interaction. Each app is a Profile —
// per-frame CPU/GPU cost distributions, a demand cadence (event-driven
// UI, fixed-rate video, or continuous game loop) and background
// utilization that persists even when no frames are produced.
//
// The six Google Play applications of the paper's evaluation (Facebook,
// Spotify, Chrome, Lineage 2 Revolution, PubG Mobile, YouTube) plus the
// home screen are provided as presets. Their parameters are synthetic
// but chosen to reproduce the phenomena the paper's Fig. 1 documents:
//
//   - Facebook: bursty 40–60 FPS during scrolls, near-zero while reading;
//   - Spotify: FPS ≈ 0 for long stretches while background audio and
//     network work keeps CPU utilization — and hence schedutil's
//     frequency choice — high (the paper's headline waste case);
//   - games: sustained 60 FPS demand with heavy GPU frames, preceded by
//     a loading splash (high CPU, zero FPS — the scenario Section II
//     uses against utilization-driven baselines);
//   - YouTube: fixed ~30 FPS video cadence with decode load.
package workload
