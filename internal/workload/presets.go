package workload

// Preset app names (also the Q-table keys the agent persists under).
const (
	NameHome     = "home"
	NameFacebook = "facebook"
	NameSpotify  = "spotify"
	NameChrome   = "chrome"
	NameLineage  = "lineage2revolution"
	NamePubG     = "pubgmobile"
	NameYouTube  = "youtube"
)

// Work-unit intuition: the big cluster drains f × IPC × parallelism
// units/s; at 1.5 GHz, IPC 2.2, parallelism 1.3 that is ≈4.3e9 units/s,
// so a 2.8e7-unit frame costs ≈6.5 ms — comfortably inside a 16.7 ms
// VSync at mid frequency, but ≈15 ms at the 650 MHz floor. That gap is
// what DVFS policies trade power against.

// Home returns the launcher/home-screen workload.
func Home() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameHome, Class: ClassLauncher,
		FrameCPUMean: 1.6e7, FrameGPUMean: 3.0e7, FrameJitter: 0.25, Parallelism: 1.3,
		ActiveBigBg: 0.06, ActiveLittleBg: 0.10, ActiveGPUBg: 0.02,
		IdleBigBg: 0.02, IdleLittleBg: 0.05, IdleGPUBg: 0.0,
		LoadingBigBg: 0.3, LoadingLittleBg: 0.3,
		BgJitter: 0.3,
	})
}

// Facebook returns the social-feed workload: heavy scroll frames,
// notable feed-prefetch background, long reading pauses.
func Facebook() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameFacebook, Class: ClassSocial,
		FrameCPUMean: 3.4e7, FrameGPUMean: 5.2e7, FrameJitter: 0.35, Parallelism: 1.4,
		// Feed prefetch, media autoplay and tracking keep a hefty
		// inelastic load running even while the user reads.
		ActiveBigBg: 0.34, ActiveLittleBg: 0.34, ActiveGPUBg: 0.03,
		IdleBigBg: 0.30, IdleLittleBg: 0.30, IdleGPUBg: 0.01,
		LoadingBigBg: 0.85, LoadingLittleBg: 0.55,
		BgJitter: 0.35,
	})
}

// Spotify returns the music workload: the Fig. 1 waste case — FPS near
// zero for long stretches while the audio/network pipeline keeps CPU
// utilization (and schedutil's frequency pick) high.
func Spotify() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameSpotify, Class: ClassMusic,
		FrameCPUMean: 2.3e7, FrameGPUMean: 4.2e7, FrameJitter: 0.30, Parallelism: 1.3,
		ActiveBigBg: 0.52, ActiveLittleBg: 0.48, ActiveGPUBg: 0.02,
		// Music keeps playing while the user idles: background stays up
		// (audio decode, network prefetch, DRM — a fixed ops rate that
		// keeps schedutil's big-cluster pick at the 1.8–2 GHz band
		// Fig. 1 records while FPS sits at zero).
		IdleBigBg: 0.48, IdleLittleBg: 0.45, IdleGPUBg: 0.01,
		LoadingBigBg: 0.8, LoadingLittleBg: 0.5,
		BgJitter: 0.30,
	})
}

// Chrome returns the web-browser workload: expensive layout/paint
// frames and page-load CPU bursts.
func Chrome() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameChrome, Class: ClassBrowser,
		FrameCPUMean: 3.3e7, FrameGPUMean: 5.6e7, FrameJitter: 0.40, Parallelism: 1.6,
		ActiveBigBg: 0.22, ActiveLittleBg: 0.26, ActiveGPUBg: 0.03,
		IdleBigBg: 0.08, IdleLittleBg: 0.15, IdleGPUBg: 0.01,
		LoadingBigBg: 0.9, LoadingLittleBg: 0.5,
		BgJitter: 0.35,
	})
}

// Lineage returns Lineage 2 Revolution — the paper's "very
// computationally intensive game": sustained 60 FPS demand, heavy GPU
// frames, long level-loading splash.
func Lineage() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameLineage, Class: ClassGame,
		FrameCPUMean: 1.40e8, FrameGPUMean: 1.18e8, FrameJitter: 0.40, Parallelism: 2.5,
		GameFPS:     60,
		ActiveBigBg: 0.18, ActiveLittleBg: 0.22, ActiveGPUBg: 0.0,
		IdleBigBg: 0.06, IdleLittleBg: 0.12, IdleGPUBg: 0.0,
		LoadingBigBg: 0.95, LoadingLittleBg: 0.6,
		BgJitter: 0.25,
	})
}

// PubG returns PubG Mobile: slightly lighter frames than Lineage but the
// same continuous-render shape.
func PubG() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NamePubG, Class: ClassGame,
		FrameCPUMean: 1.22e8, FrameGPUMean: 1.02e8, FrameJitter: 0.45, Parallelism: 2.4,
		GameFPS:     60,
		ActiveBigBg: 0.16, ActiveLittleBg: 0.20, ActiveGPUBg: 0.0,
		IdleBigBg: 0.06, IdleLittleBg: 0.10, IdleGPUBg: 0.0,
		LoadingBigBg: 0.95, LoadingLittleBg: 0.6,
		BgJitter: 0.25,
	})
}

// YouTube returns the video-streaming workload: fixed ~30 FPS content
// cadence, decode work carried as LITTLE/GPU background.
func YouTube() *ProfileApp {
	return NewProfileApp(Profile{
		Name: NameYouTube, Class: ClassVideo,
		FrameCPUMean: 1.3e7, FrameGPUMean: 4.6e7, FrameJitter: 0.20, Parallelism: 1.2,
		VideoFPS: 30,
		// Streaming keeps a bursty inelastic pipeline hot: network
		// spikes + demux on big, decode on LITTLE, composition on the
		// GPU. The bursts (high jitter) are what drag a headroom-chasing
		// governor to frequencies the steady decode never needs.
		ActiveBigBg: 0.26, ActiveLittleBg: 0.44, ActiveGPUBg: 0.14,
		IdleBigBg: 0.26, IdleLittleBg: 0.44, IdleGPUBg: 0.14,
		LoadingBigBg: 0.8, LoadingLittleBg: 0.5,
		BgJitter: 0.55,
	})
}

// ByName returns the preset app with the given name, or nil.
func ByName(name string) *ProfileApp {
	switch name {
	case NameHome:
		return Home()
	case NameFacebook:
		return Facebook()
	case NameSpotify:
		return Spotify()
	case NameChrome:
		return Chrome()
	case NameLineage:
		return Lineage()
	case NamePubG:
		return PubG()
	case NameYouTube:
		return YouTube()
	default:
		return nil
	}
}

// EvaluationApps returns the six Play-store apps of the paper's
// evaluation (Fig. 7 / Fig. 8), in the paper's presentation order.
func EvaluationApps() []*ProfileApp {
	return []*ProfileApp{Facebook(), Lineage(), PubG(), Spotify(), Chrome(), YouTube()}
}
