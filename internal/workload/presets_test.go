package workload

import (
	"math/rand"
	"testing"
)

// presetMakers mirrors every preset constructor with its expected
// identity; ByName and the class contracts are pinned against it.
var presetMakers = []struct {
	name  string
	class Class
	make  func() *ProfileApp
}{
	{NameHome, ClassLauncher, Home},
	{NameFacebook, ClassSocial, Facebook},
	{NameSpotify, ClassMusic, Spotify},
	{NameChrome, ClassBrowser, Chrome},
	{NameLineage, ClassGame, Lineage},
	{NamePubG, ClassGame, PubG},
	{NameYouTube, ClassVideo, YouTube},
}

func TestPresetInvariants(t *testing.T) {
	for _, p := range presetMakers {
		app := p.make()
		if app.Name() != p.name {
			t.Fatalf("preset %q reports name %q", p.name, app.Name())
		}
		if app.Class() != p.class {
			t.Fatalf("%s class = %v, want %v", p.name, app.Class(), p.class)
		}
		prof := app.Profile()
		if err := prof.Validate(); err != nil {
			t.Fatalf("%s profile invalid: %v", p.name, err)
		}
		// Background fractions are fractions of max capacity.
		for _, bg := range []float64{
			prof.ActiveBigBg, prof.ActiveLittleBg, prof.ActiveGPUBg,
			prof.IdleBigBg, prof.IdleLittleBg, prof.IdleGPUBg,
			prof.LoadingBigBg, prof.LoadingLittleBg,
		} {
			if bg < 0 || bg > 1 {
				t.Fatalf("%s background %v out of [0,1]", p.name, bg)
			}
		}
		if prof.BgJitter < 0 || prof.BgJitter >= 1 {
			t.Fatalf("%s BgJitter %v out of [0,1)", p.name, prof.BgJitter)
		}
		// Games drive a render loop; video a playback cadence.
		if p.class == ClassGame && prof.GameFPS <= 0 {
			t.Fatalf("%s is a game without GameFPS", p.name)
		}
		if p.class == ClassVideo && prof.VideoFPS <= 0 {
			t.Fatalf("%s is video without VideoFPS", p.name)
		}
	}
}

func TestByNameRoundTripAndUnknown(t *testing.T) {
	for _, p := range presetMakers {
		app := ByName(p.name)
		if app == nil || app.Name() != p.name {
			t.Fatalf("ByName(%q) = %v", p.name, app)
		}
		// Every call builds a fresh instance — presets must never share
		// mutable cadence state across sessions.
		if ByName(p.name) == app {
			t.Fatalf("ByName(%q) returned a shared instance", p.name)
		}
	}
	if ByName("") != nil || ByName("nosuchapp") != nil {
		t.Fatal("unknown names must return nil")
	}
}

func TestEvaluationAppsMatchPaperOrder(t *testing.T) {
	apps := EvaluationApps()
	want := []string{NameFacebook, NameLineage, NamePubG, NameSpotify, NameChrome, NameYouTube}
	if len(apps) != len(want) {
		t.Fatalf("%d evaluation apps, want %d", len(apps), len(want))
	}
	for i, app := range apps {
		if app.Name() != want[i] {
			t.Fatalf("evaluation app %d = %s, want %s (paper presentation order)", i, app.Name(), want[i])
		}
	}
}

func TestSpotifyKeepsBackgroundWhileIdleAndOff(t *testing.T) {
	// The Fig. 1 waste case: music keeps the pipeline hot with the
	// screen static — and still with the screen off (scenario phases).
	app := Spotify()
	rng := rand.New(rand.NewSource(1))
	idle := app.Tick(0, 1000, InterIdle, rng)
	if idle.BigBg < 0.2 || idle.WantFrame {
		t.Fatalf("spotify idle demand = %+v", idle)
	}
	app.Reset()
	off := app.Tick(0, 1000, InterOff, rng)
	if off.BigBg < 0.2 {
		t.Fatalf("spotify screen-off background collapsed: %+v", off)
	}
	if off.WantFrame {
		t.Fatal("screen-off must not demand frames")
	}
}

func TestInteractionNamesCoverAllStates(t *testing.T) {
	for i := InterIdle; i <= InterOff; i++ {
		if name := i.String(); name == "" || name[0] == 'I' {
			t.Fatalf("interaction %d has no lowercase name: %q", int(i), name)
		}
	}
	if InterOff.String() != "off" {
		t.Fatalf("InterOff = %q", InterOff.String())
	}
	if Interaction(99).String() != "Interaction(99)" {
		t.Fatalf("out-of-range interaction = %q", Interaction(99).String())
	}
}
