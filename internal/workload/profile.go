package workload

import (
	"fmt"
	"math/rand"
)

// Profile parameterizes a ProfileApp. Work values are in work units
// (core-cycles at IPC 1); see FrameJob.
type Profile struct {
	Name  string
	Class Class

	// FrameCPUMean/FrameGPUMean are the mean per-frame costs during
	// interactive rendering; Jitter is the ± uniform spread fraction.
	FrameCPUMean float64
	FrameGPUMean float64
	FrameJitter  float64
	// Parallelism is how many big cores the render path can use.
	Parallelism float64

	// VideoFPS > 0 gives InterWatch a fixed frame cadence (e.g. 30).
	VideoFPS int
	// GameFPS > 0 gives InterPlay a continuous render loop targeting
	// that rate (demand-limited by the pipeline, so effectively "as fast
	// as VSync allows" at 60).
	GameFPS int

	// Background utilizations while the app is foreground and the user
	// is actively engaging (scroll/touch/play/watch).
	ActiveBigBg, ActiveLittleBg, ActiveGPUBg float64
	// Background utilizations while the user idles in the app. For
	// Spotify these stay high (audio pipeline) — the Fig. 1 waste case.
	IdleBigBg, IdleLittleBg, IdleGPUBg float64
	// Loading-phase background: splash screen with hot CPUs and no
	// frames.
	LoadingBigBg, LoadingLittleBg float64
	// BgJitter adds ± uniform noise to background utilizations so
	// schedutil sees realistic fluctuation.
	BgJitter float64
}

// Validate reports a configuration error, or nil.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.FrameCPUMean <= 0 || p.FrameGPUMean <= 0:
		return fmt.Errorf("workload: profile %q needs positive frame costs", p.Name)
	case p.Parallelism <= 0:
		return fmt.Errorf("workload: profile %q needs positive parallelism", p.Name)
	case p.FrameJitter < 0 || p.FrameJitter >= 1:
		return fmt.Errorf("workload: profile %q jitter must be in [0,1)", p.Name)
	case p.VideoFPS < 0 || p.GameFPS < 0:
		return fmt.Errorf("workload: profile %q rates must be non-negative", p.Name)
	}
	return nil
}

// ProfileApp is the single App implementation: behaviour comes entirely
// from the Profile. All seven paper workloads are ProfileApps.
type ProfileApp struct {
	p Profile

	pendingFrame bool
	nextCadence  int64 // next watch/play frame due time (µs)
}

// NewProfileApp builds an app from a profile, panicking on invalid
// profiles (presets are code, not input).
func NewProfileApp(p Profile) *ProfileApp {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &ProfileApp{p: p}
}

// Name implements App.
func (a *ProfileApp) Name() string { return a.p.Name }

// Class implements App.
func (a *ProfileApp) Class() Class { return a.p.Class }

// Profile returns a copy of the app's parameters.
func (a *ProfileApp) Profile() Profile { return a.p }

// Reset implements App.
func (a *ProfileApp) Reset() {
	a.pendingFrame = false
	a.nextCadence = 0
}

// Tick implements App.
func (a *ProfileApp) Tick(nowUS, dtUS int64, inter Interaction, rng *rand.Rand) Demand {
	var d Demand
	switch inter {
	case InterScroll, InterTouch:
		// Event-driven UI rendering: redraw continuously while the
		// gesture lasts (Android invalidates on every input event).
		a.pendingFrame = true
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterPlay:
		fps := a.p.GameFPS
		if fps <= 0 {
			fps = 60
		}
		a.cadence(nowUS, int64(1_000_000/fps))
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterWatch:
		fps := a.p.VideoFPS
		if fps <= 0 {
			fps = 30
		}
		a.cadence(nowUS, int64(1_000_000/fps))
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterLoading:
		a.pendingFrame = false
		a.nextCadence = 0
		d.BigBg, d.LittleBg = a.p.LoadingBigBg, a.p.LoadingLittleBg
	default: // InterIdle, InterOff
		// Screen-off keeps the idle background running (audio decode and
		// sync don't care about the panel); the display-side savings are
		// the engine's business, not the app's.
		a.pendingFrame = false
		a.nextCadence = 0
		d.BigBg, d.LittleBg, d.GPUBg = a.p.IdleBigBg, a.p.IdleLittleBg, a.p.IdleGPUBg
	}
	if a.p.BgJitter > 0 {
		d.BigBg = jitter(d.BigBg, a.p.BgJitter, rng)
		d.LittleBg = jitter(d.LittleBg, a.p.BgJitter, rng)
		d.GPUBg = jitter(d.GPUBg, a.p.BgJitter, rng)
	}
	d.WantFrame = a.pendingFrame
	return d
}

// cadence arms the pending flag when the fixed-rate clock elapses.
func (a *ProfileApp) cadence(nowUS, periodUS int64) {
	if a.nextCadence == 0 {
		a.nextCadence = nowUS // first frame immediately
	}
	if nowUS >= a.nextCadence {
		a.pendingFrame = true
		// Catch up without accumulating debt when rendering stalled.
		for a.nextCadence <= nowUS {
			a.nextCadence += periodUS
		}
	}
}

// StartFrame implements App.
func (a *ProfileApp) StartFrame(inter Interaction, rng *rand.Rand) FrameJob {
	a.pendingFrame = false
	return FrameJob{
		CPUWork:     jittered(a.p.FrameCPUMean, a.p.FrameJitter, rng),
		GPUWork:     jittered(a.p.FrameGPUMean, a.p.FrameJitter, rng),
		Parallelism: a.p.Parallelism,
	}
}

func jittered(mean, j float64, rng *rand.Rand) float64 {
	if j <= 0 || rng == nil {
		return mean
	}
	return mean * (1 + j*(2*rng.Float64()-1))
}

func jitter(v, j float64, rng *rand.Rand) float64 {
	if v <= 0 || rng == nil {
		return v
	}
	v *= 1 + j*(2*rng.Float64()-1)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
