package workload

import "nextdvfs/internal/frand"

// TickFast is Tick with the jitter draws taken from a frand.Rand — the
// batched engine's devirtualized per-lane path. Branches, draw order
// and arithmetic mirror Tick exactly (same jitter clamps, same skip of
// zero-valued channels), so a lane fed the replayed stream stays
// bit-identical to a scalar engine fed the standard one; the pairing is
// pinned by TestTickFastMatchesTick.
func (a *ProfileApp) TickFast(nowUS, dtUS int64, inter Interaction, rng *frand.Rand) Demand {
	var d Demand
	switch inter {
	case InterScroll, InterTouch:
		a.pendingFrame = true
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterPlay:
		fps := a.p.GameFPS
		if fps <= 0 {
			fps = 60
		}
		a.cadence(nowUS, int64(1_000_000/fps))
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterWatch:
		fps := a.p.VideoFPS
		if fps <= 0 {
			fps = 30
		}
		a.cadence(nowUS, int64(1_000_000/fps))
		d.BigBg, d.LittleBg, d.GPUBg = a.p.ActiveBigBg, a.p.ActiveLittleBg, a.p.ActiveGPUBg
	case InterLoading:
		a.pendingFrame = false
		a.nextCadence = 0
		d.BigBg, d.LittleBg = a.p.LoadingBigBg, a.p.LoadingLittleBg
	default: // InterIdle, InterOff
		a.pendingFrame = false
		a.nextCadence = 0
		d.BigBg, d.LittleBg, d.GPUBg = a.p.IdleBigBg, a.p.IdleLittleBg, a.p.IdleGPUBg
	}
	// The three background jitters, with jitterFast's body written out
	// so the draws stay inside this one call frame: same skip of
	// zero-valued channels, same draw order (big, little, GPU), same
	// clamps.
	if j := a.p.BgJitter; j > 0 {
		if v := d.BigBg; v > 0 {
			v *= 1 + j*(2*rng.Float64()-1)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d.BigBg = v
		}
		if v := d.LittleBg; v > 0 {
			v *= 1 + j*(2*rng.Float64()-1)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d.LittleBg = v
		}
		if v := d.GPUBg; v > 0 {
			v *= 1 + j*(2*rng.Float64()-1)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d.GPUBg = v
		}
	}
	d.WantFrame = a.pendingFrame
	return d
}

// StartFrameFast is StartFrame over a frand.Rand; same draw order (CPU
// then GPU) and arithmetic.
func (a *ProfileApp) StartFrameFast(inter Interaction, rng *frand.Rand) FrameJob {
	a.pendingFrame = false
	return FrameJob{
		CPUWork:     jitteredFast(a.p.FrameCPUMean, a.p.FrameJitter, rng),
		GPUWork:     jitteredFast(a.p.FrameGPUMean, a.p.FrameJitter, rng),
		Parallelism: a.p.Parallelism,
	}
}

func jitteredFast(mean, j float64, rng *frand.Rand) float64 {
	if j <= 0 || rng == nil {
		return mean
	}
	return mean * (1 + j*(2*rng.Float64()-1))
}
