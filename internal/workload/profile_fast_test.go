package workload

import (
	"math/rand"
	"testing"

	"nextdvfs/internal/frand"
)

// TickFast/StartFrameFast must track Tick/StartFrame draw for draw:
// two copies of every preset app walked through every interaction with
// paired rngs (stdlib vs replay) must emit identical demands and frame
// jobs at every step.
func TestTickFastMatchesTick(t *testing.T) {
	inters := []Interaction{
		InterIdle, InterTouch, InterScroll, InterWatch,
		InterPlay, InterLoading, InterOff, InterScroll, InterIdle, InterPlay,
	}
	for _, app := range EvaluationApps() {
		name := app.Name()
		t.Run(name, func(t *testing.T) {
			slow, fast := ByName(name), ByName(name)
			srng := rand.New(rand.NewSource(7))
			frng := frand.New(7)
			now := int64(0)
			for step := 0; step < 2000; step++ {
				now += 1000
				inter := inters[(step/97)%len(inters)]
				ds := slow.Tick(now, 1000, inter, srng)
				df := fast.TickFast(now, 1000, inter, frng)
				if ds != df {
					t.Fatalf("step %d inter %v: TickFast %+v != Tick %+v", step, inter, df, ds)
				}
				if ds.WantFrame && step%3 == 0 {
					js := slow.StartFrame(inter, srng)
					jf := fast.StartFrameFast(inter, frng)
					if js != jf {
						t.Fatalf("step %d: StartFrameFast %+v != StartFrame %+v", step, jf, js)
					}
				}
			}
		})
	}
}
