package workload

import (
	"math/rand"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestScrollDemandsFrames(t *testing.T) {
	app := Facebook()
	d := app.Tick(0, 1000, InterScroll, rng())
	if !d.WantFrame {
		t.Fatal("scroll should demand a frame")
	}
}

func TestIdleDemandsNoFrames(t *testing.T) {
	app := Facebook()
	d := app.Tick(0, 1000, InterIdle, rng())
	if d.WantFrame {
		t.Fatal("idle should not demand frames")
	}
}

func TestLoadingHasHighCPUAndNoFrames(t *testing.T) {
	// The paper's splash-screen scenario: FPS ≈ 0 with hot CPUs.
	app := Lineage()
	d := app.Tick(0, 1000, InterLoading, rng())
	if d.WantFrame {
		t.Fatal("loading should not demand frames")
	}
	if d.BigBg < 0.5 {
		t.Fatalf("loading big background = %.2f, want heavy (>0.5)", d.BigBg)
	}
}

func TestSpotifyIdleKeepsBackgroundUp(t *testing.T) {
	// The Fig. 1 waste case: music playing keeps CPU busy at zero FPS.
	app := Spotify()
	r := rng()
	d := app.Tick(0, 1000, InterIdle, r)
	if d.WantFrame {
		t.Fatal("idle spotify should not render")
	}
	if d.BigBg < 0.1 || d.LittleBg < 0.2 {
		t.Fatalf("spotify idle background too low: big=%.2f little=%.2f", d.BigBg, d.LittleBg)
	}
	// Contrast with Facebook, whose idle background is materially lower
	// on the LITTLE+big sum.
	fb := Facebook()
	dfb := fb.Tick(0, 1000, InterIdle, r)
	if dfb.BigBg+dfb.LittleBg >= d.BigBg+d.LittleBg {
		t.Fatal("spotify idle load should exceed facebook idle load")
	}
}

func TestVideoCadenceIs30FPS(t *testing.T) {
	app := YouTube()
	r := rng()
	frames := 0
	for now := int64(0); now < 2_000_000; now += 1000 {
		d := app.Tick(now, 1000, InterWatch, r)
		if d.WantFrame {
			app.StartFrame(InterWatch, r)
			frames++
		}
	}
	// 2 s at 30 FPS → ≈60 frames.
	if frames < 58 || frames > 62 {
		t.Fatalf("video frames in 2 s = %d, want ≈60", frames)
	}
}

func TestGameCadenceIs60FPS(t *testing.T) {
	app := Lineage()
	r := rng()
	frames := 0
	for now := int64(0); now < 2_000_000; now += 1000 {
		d := app.Tick(now, 1000, InterPlay, r)
		if d.WantFrame {
			app.StartFrame(InterPlay, r)
			frames++
		}
	}
	if frames < 118 || frames > 122 {
		t.Fatalf("game frames in 2 s = %d, want ≈120", frames)
	}
}

func TestCadencePausesWhileRendererBusy(t *testing.T) {
	// If StartFrame is never called (renderer stalled), WantFrame stays
	// pending rather than accumulating debt.
	app := YouTube()
	r := rng()
	for now := int64(0); now < 500_000; now += 1000 {
		app.Tick(now, 1000, InterWatch, r)
	}
	// One StartFrame clears the pending flag...
	app.StartFrame(InterWatch, r)
	d := app.Tick(500_000, 1000, InterWatch, r)
	// ... and the next cadence slot re-arms it (we may be past due).
	if !d.WantFrame {
		// The very next due time may be ahead; advance to it.
		armed := false
		for now := int64(501_000); now < 600_000; now += 1000 {
			if app.Tick(now, 1000, InterWatch, r).WantFrame {
				armed = true
				break
			}
		}
		if !armed {
			t.Fatal("cadence never re-armed after StartFrame")
		}
	}
}

func TestStartFrameJitterWithinBounds(t *testing.T) {
	app := Chrome()
	r := rng()
	p := app.Profile()
	for i := 0; i < 500; i++ {
		j := app.StartFrame(InterScroll, r)
		loC, hiC := p.FrameCPUMean*(1-p.FrameJitter), p.FrameCPUMean*(1+p.FrameJitter)
		if j.CPUWork < loC-1 || j.CPUWork > hiC+1 {
			t.Fatalf("CPU work %.3g outside [%.3g, %.3g]", j.CPUWork, loC, hiC)
		}
		loG, hiG := p.FrameGPUMean*(1-p.FrameJitter), p.FrameGPUMean*(1+p.FrameJitter)
		if j.GPUWork < loG-1 || j.GPUWork > hiG+1 {
			t.Fatalf("GPU work %.3g outside [%.3g, %.3g]", j.GPUWork, loG, hiG)
		}
		if j.Parallelism != p.Parallelism {
			t.Fatal("parallelism should come from profile")
		}
	}
}

func TestBackgroundJitterStaysInUnitRange(t *testing.T) {
	app := Spotify()
	r := rng()
	for i := 0; i < 1000; i++ {
		d := app.Tick(int64(i)*1000, 1000, InterIdle, r)
		for _, u := range []float64{d.BigBg, d.LittleBg, d.GPUBg} {
			if u < 0 || u > 1 {
				t.Fatalf("background util %.3f outside [0,1]", u)
			}
		}
	}
}

func TestResetClearsState(t *testing.T) {
	app := YouTube()
	r := rng()
	app.Tick(0, 1000, InterWatch, r)
	app.Reset()
	d := app.Tick(1_000_000, 1000, InterIdle, r)
	if d.WantFrame {
		t.Fatal("reset app should not have a pending frame")
	}
}

func TestPresetsRoundTripByName(t *testing.T) {
	names := []string{NameHome, NameFacebook, NameSpotify, NameChrome, NameLineage, NamePubG, NameYouTube}
	for _, n := range names {
		app := ByName(n)
		if app == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
		if app.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, app.Name())
		}
	}
	if ByName("unknown") != nil {
		t.Fatal("unknown app should be nil")
	}
}

func TestEvaluationAppsMatchPaper(t *testing.T) {
	apps := EvaluationApps()
	if len(apps) != 6 {
		t.Fatalf("evaluation apps = %d, want 6", len(apps))
	}
	games := 0
	for _, a := range apps {
		if a.Class() == ClassGame {
			games++
		}
	}
	if games != 2 {
		t.Fatalf("games = %d, want 2 (Lineage, PubG)", games)
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{Name: "x", FrameCPUMean: 1, FrameGPUMean: 1, Parallelism: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile invalid: %v", err)
	}
	bads := []Profile{
		{},
		{Name: "x"},
		{Name: "x", FrameCPUMean: 1, FrameGPUMean: 1},
		{Name: "x", FrameCPUMean: 1, FrameGPUMean: 1, Parallelism: 1, FrameJitter: 1.5},
		{Name: "x", FrameCPUMean: 1, FrameGPUMean: 1, Parallelism: 1, VideoFPS: -1},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad profile %d passed validation", i)
		}
	}
}

func TestClassAndInteractionStrings(t *testing.T) {
	if ClassGame.String() != "game" || ClassMusic.String() != "music" {
		t.Fatal("class names wrong")
	}
	if InterScroll.String() != "scroll" || InterLoading.String() != "loading" {
		t.Fatal("interaction names wrong")
	}
	if Class(99).String() == "" || Interaction(99).String() == "" {
		t.Fatal("out-of-range formatting should not be empty")
	}
}
