// Package nextdvfs is the public API of the Next reproduction: a
// user-interaction-aware reinforcement-learning DVFS agent for CPU-GPU
// mobile MPSoCs (Dey et al., DATE 2020), together with the simulated
// Galaxy Note 9 platform it is evaluated on.
//
// The three entry points cover the common workflows:
//
//   - Run executes one user session on the simulated handset under a
//     chosen management scheme and returns power/thermal/QoS results;
//   - RunScenario replays a composable usage scenario (commute,
//     gaming marathon, doomscroll, … — see Scenarios) with screen-off
//     stretches, ambient-temperature drift and panel-refresh switches;
//   - TrainAgent trains a Next agent on an application the way the
//     paper does (repeated sessions until the Q-table converges);
//   - NewFleet wires several simulated devices into the federated
//     training flow of the paper's Section IV-C.
//
// Applications are referenced by preset name (see Apps) and all
// randomness flows from explicit seeds, so every run is reproducible.
package nextdvfs

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"nextdvfs/internal/aggregator"
	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/fleetsim"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/plan"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/rollout"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// Re-exported result and agent types.
type (
	// Result summarizes one simulated session.
	Result = sim.Result
	// Sample is one trace row of a Result.
	Sample = sim.Sample
	// Agent is the Next reinforcement-learning agent.
	Agent = core.Agent
	// AgentConfig tunes the agent (defaults follow the paper).
	AgentConfig = core.AgentConfig
	// TrainStats reports a training run.
	TrainStats = exp.TrainStats
	// Store persists Q-tables on disk, one JSON file per app.
	Store = core.Store
	// Fleet is a set of devices doing federated training.
	Fleet = cloud.Fleet
	// FleetClient is the device-side API of the fleet policy server
	// (check in, upload tables, trigger merges, pull policies).
	FleetClient = fleetd.Client
	// FleetSimOptions sizes and seeds a simulated device-fleet run
	// against a fleet policy server.
	FleetSimOptions = fleetsim.Options
	// FleetSimReport summarizes a simulated fleet run.
	FleetSimReport = fleetsim.Report
	// FleetRolloutOptions switches a fleet-sim run into staged-rollout
	// A/B mode: train two policy generations, canary the second, and
	// let the server promote or roll back on measured QoS/energy.
	FleetRolloutOptions = fleetsim.RolloutOptions
	// FleetRolloutReport records a staged-rollout A/B run per round.
	FleetRolloutReport = fleetsim.RolloutReport
	// FleetFederationReport records the two-tier federation epoch of an
	// aggregator-tier fleet-sim run (FleetSimOptions.Aggregators > 0).
	FleetFederationReport = fleetsim.FederationReport
)

// DefaultAgentConfig returns the paper-faithful agent configuration.
func DefaultAgentConfig() AgentConfig { return core.DefaultAgentConfig() }

// Scheme selects the power/thermal management stack for a Run.
type Scheme string

// Available schemes.
const (
	// SchemeSchedutil is stock Android's utilization governor with
	// touch input boost (the paper's baseline).
	SchemeSchedutil Scheme = "schedutil"
	// SchemeNext is the paper's agent on top of schedutil. Supply a
	// trained Agent in RunOptions, or a fresh one is created.
	SchemeNext Scheme = "next"
	// SchemeIntQoS is the Int. QoS PM baseline (games only; other apps
	// fall back to schedutil behaviour).
	SchemeIntQoS Scheme = "intqospm"
	// SchemePerformance / SchemePowersave pin every cluster to its
	// cap / floor — the classic bracketing governors.
	SchemePerformance Scheme = "performance"
	SchemePowersave   Scheme = "powersave"
	// SchemeThermalCap is a kernel-thermal-zone-style controller on top
	// of schedutil: user-blind capping on the big sensor's trip point
	// (extension baseline).
	SchemeThermalCap Scheme = "thermalcap"
)

// Apps returns the preset application names: the six Play-store apps of
// the paper's evaluation plus the home screen.
func Apps() []string {
	return []string{
		workload.NameHome, workload.NameFacebook, workload.NameSpotify,
		workload.NameChrome, workload.NameLineage, workload.NamePubG,
		workload.NameYouTube,
	}
}

// Platforms returns the registered simulated-device names (see the
// platform registry): the paper's "note9" plus Snapdragon-class and
// mid-range presets and their 90/120 Hz panel variants.
func Platforms() []string { return platform.Names() }

// PlatformInfo describes one registry entry for listings.
type PlatformInfo struct {
	Name        string
	Description string
	RefreshHz   int
}

// PlatformInfos returns name/description/refresh for every registered
// platform, sorted by name.
func PlatformInfos() []PlatformInfo {
	names := platform.Names()
	infos := make([]PlatformInfo, 0, len(names))
	for _, n := range names {
		p := platform.MustGet(n)
		infos = append(infos, PlatformInfo{Name: p.Name, Description: p.Description, RefreshHz: p.RefreshHz})
	}
	return infos
}

// RunOptions configures a single simulated session.
type RunOptions struct {
	// App is a preset name from Apps. Required unless Fig1Session or
	// Scenario is set.
	App string
	// Platform is a preset device name from Platforms (default
	// "note9", the paper's handset).
	Platform string
	// Seconds is the session length (0 → the paper's per-class default:
	// 5 min for games, 1.5–3 min otherwise). With Scenario it rescales
	// the whole scenario to this total duration.
	Seconds float64
	// Fig1Session replays the paper's home→Facebook→Spotify session
	// instead of a single app.
	Fig1Session bool
	// Scenario names a preset usage scenario from Scenarios — a
	// multi-app session with screen-off stretches, ambient-temperature
	// drift and panel-refresh switches. Mutually exclusive with App and
	// Fig1Session.
	Scenario string
	// Scheme picks the management stack (default SchemeSchedutil).
	Scheme Scheme
	// Agent supplies a (possibly trained) Next agent for SchemeNext.
	Agent *Agent
	// Learner names the TD update rule a fresh SchemeNext agent uses
	// ("" = watkins, the paper's rule; see Learners()). Ignored when
	// Agent is supplied — an existing agent keeps its own learner.
	Learner string
	// Explorer names the exploration strategy of a fresh SchemeNext
	// agent ("" = egreedy; see Explorers()). Ignored when Agent is set.
	Explorer string
	// Seed drives the session's stochastic interaction (default 1).
	Seed int64
	// RecordEverySec samples the trace at this period (0 → 1 s).
	RecordEverySec float64
}

// Run simulates one session on the chosen platform (the Note 9 unless
// RunOptions.Platform says otherwise) and returns its Result.
func Run(opts RunOptions) (Result, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return Result{}, fmt.Errorf("nextdvfs: %w (see Platforms())", err)
	}
	var cfg sim.Config
	if opts.Scenario != "" {
		if opts.App != "" || opts.Fig1Session {
			return Result{}, fmt.Errorf("nextdvfs: Scenario is mutually exclusive with App and Fig1Session")
		}
		scn, err := scenario.Get(opts.Scenario)
		if err != nil {
			return Result{}, fmt.Errorf("nextdvfs: %w", err)
		}
		if d := scn.DurS(); opts.Seconds > 0 && d > 0 {
			scn = scenario.Scaled(scn, opts.Seconds/d)
		}
		compiled, err := scenario.Compile(scn, opts.Seed, plat.AmbientC)
		if err != nil {
			return Result{}, fmt.Errorf("nextdvfs: %w", err)
		}
		cfg = plat.Config(compiled.Timeline, opts.Seed)
		cfg.Ambient = compiled.Ambient
		cfg.Refresh = compiled.Refresh
	} else {
		tl, err := timelineFor(opts)
		if err != nil {
			return Result{}, err
		}
		cfg = plat.Config(tl, opts.Seed)
	}
	if opts.RecordEverySec > 0 {
		cfg.RecordIntervalUS = int64(opts.RecordEverySec * 1e6)
	}
	// The scheme registry (internal/exp) resolves the management stack;
	// its unknown-name error enumerates the registered set, so the
	// message can never drift from reality.
	spec, err := exp.GetScheme(string(opts.Scheme))
	if err != nil {
		return Result{}, fmt.Errorf("nextdvfs: %w", err)
	}
	var agent *core.Agent
	if spec.TrainsAgent {
		agent = opts.Agent
		if agent == nil {
			if !learner.Known(opts.Learner) {
				return Result{}, fmt.Errorf("nextdvfs: unknown learner %q (see Learners())", opts.Learner)
			}
			if !learner.KnownExplorer(opts.Explorer) {
				return Result{}, fmt.Errorf("nextdvfs: unknown explorer %q (see Explorers())", opts.Explorer)
			}
			c := exp.DefaultAgentConfigFor(plat)
			c.Seed = opts.Seed
			c.Learner = opts.Learner
			c.Explorer = opts.Explorer
			agent = core.NewAgent(c)
		}
	}
	spec.Configure(&cfg, plat, agent)
	eng, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return eng.Run(), nil
}

func timelineFor(opts RunOptions) (*session.Timeline, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.Fig1Session {
		return session.Fig1Timeline(rng), nil
	}
	app := workload.ByName(opts.App)
	if app == nil {
		return nil, fmt.Errorf("nextdvfs: unknown app %q (see Apps())", opts.App)
	}
	if opts.Seconds > 0 {
		return &session.Timeline{Scripts: []session.Script{
			session.ForApp(app, session.Seconds(opts.Seconds), rng),
		}}, nil
	}
	return session.EvalTimeline(app, rng), nil
}

// Schemes returns the registered management-scheme names — the same
// set Run accepts.
func Schemes() []string { return exp.Schemes() }

// Learners returns the registered TD-update-rule names: the paper's
// "watkins" plus the extension rules (doubleq, sarsa, expected-sarsa,
// nstep). Any of them plugs into Run/TrainAgent via the Learner
// options.
func Learners() []string { return learner.Names() }

// LearnerInfo describes one registered learner for listings.
type LearnerInfo struct {
	Name        string
	Description string
	// Roles are the table roles the learner persists and federates,
	// primary first ("q", or "a"/"b" for doubleq).
	Roles []string
}

// LearnerInfos returns name/description/roles for every registered
// learner, sorted by name.
func LearnerInfos() []LearnerInfo {
	infos := learner.Infos()
	out := make([]LearnerInfo, len(infos))
	for i, in := range infos {
		out[i] = LearnerInfo{Name: in.Name, Description: in.Description, Roles: in.Roles}
	}
	return out
}

// Explorers returns the registered exploration-strategy names
// (egreedy, softmax, ucb).
func Explorers() []string { return learner.ExplorerNames() }

// RunScenario simulates one preset usage scenario (see Scenarios) on
// the chosen platform — shorthand for Run with RunOptions.Scenario set.
func RunScenario(name string, opts RunOptions) (Result, error) {
	opts.Scenario = name
	return Run(opts)
}

// Scenarios returns the preset usage-scenario names: composable
// multi-app sessions (commute, gaming-marathon, doomscroll, …) with
// screen-off stretches, ambient-temperature drift and panel-refresh
// switches.
func Scenarios() []string { return scenario.Names() }

// ScenarioInfo describes one preset scenario for listings.
type ScenarioInfo struct {
	Name        string
	Description string
	Seconds     float64
	Apps        []string
}

// ScenarioInfos returns name/description/duration/apps for every
// preset scenario, sorted by name.
func ScenarioInfos() []ScenarioInfo {
	names := scenario.Names()
	infos := make([]ScenarioInfo, 0, len(names))
	for _, n := range names {
		s := scenario.MustGet(n)
		infos = append(infos, ScenarioInfo{Name: s.Name, Description: s.Description, Seconds: s.DurS(), Apps: s.Apps()})
	}
	return infos
}

// TrainOptions configures TrainAgent.
type TrainOptions struct {
	// Sessions bounds the number of training sessions (0 → 16).
	Sessions int
	// SessionSeconds is each session's length (0 → 150).
	SessionSeconds float64
	// Seed drives training stochasticity.
	Seed int64
	// Config overrides the default agent configuration.
	Config *AgentConfig
	// Platform is a preset device name from Platforms (default "note9").
	Platform string
	// Learner names the TD update rule ("" = watkins; see Learners()).
	Learner string
	// Explorer names the exploration strategy ("" = egreedy; see
	// Explorers()).
	Explorer string
}

// TrainAgent trains a fresh Next agent on the named preset app, exactly
// as the paper trains on a newly installed application, and returns the
// agent plus training statistics.
func TrainAgent(app string, opts TrainOptions) (*Agent, TrainStats, error) {
	if workload.ByName(app) == nil {
		return nil, TrainStats{}, fmt.Errorf("nextdvfs: unknown app %q (see Apps())", app)
	}
	if _, err := platform.Get(opts.Platform); err != nil {
		return nil, TrainStats{}, fmt.Errorf("nextdvfs: %w (see Platforms())", err)
	}
	if !learner.Known(opts.Learner) {
		return nil, TrainStats{}, fmt.Errorf("nextdvfs: unknown learner %q (see Learners())", opts.Learner)
	}
	if !learner.KnownExplorer(opts.Explorer) {
		return nil, TrainStats{}, fmt.Errorf("nextdvfs: unknown explorer %q (see Explorers())", opts.Explorer)
	}
	agent, stats := exp.Train(func() *workload.ProfileApp { return workload.ByName(app) }, exp.TrainOptions{
		MaxSessions: opts.Sessions,
		SessionSecs: opts.SessionSeconds,
		BaseSeed:    opts.Seed,
		AgentConfig: opts.Config,
		Platform:    opts.Platform,
		Learner:     opts.Learner,
		Explorer:    opts.Explorer,
	})
	return agent, stats, nil
}

// TrainAgentOn continues training an existing agent on another app (an
// on-device agent accumulates one Q-table per application).
func TrainAgentOn(agent *Agent, app string, opts TrainOptions) (TrainStats, error) {
	if workload.ByName(app) == nil {
		return TrainStats{}, fmt.Errorf("nextdvfs: unknown app %q (see Apps())", app)
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 16
	}
	if opts.SessionSeconds <= 0 {
		opts.SessionSeconds = 150
	}
	for i := 1; i <= opts.Sessions; i++ {
		seed := opts.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(workload.ByName(app), session.Seconds(opts.SessionSeconds), rng),
		}}
		if _, err := exp.RunTimelineOn(opts.Platform, tl, seed, agent); err != nil {
			return TrainStats{}, fmt.Errorf("nextdvfs: %w (see Platforms())", err)
		}
	}
	stats := TrainStats{App: app, Sessions: opts.Sessions}
	if tab := agent.TableFor(app); tab != nil && tab.Table != nil {
		stats.Converged = tab.Trained
		stats.TrainedUS = tab.Table.TrainedUS
		stats.States = tab.Table.States()
		stats.Steps = tab.Table.Steps
	}
	return stats, nil
}

// NewAgent builds a fresh Next agent.
func NewAgent(cfg AgentConfig) *Agent { return core.NewAgent(cfg) }

// AgentConfigFor returns the paper-default agent configuration adapted
// to the named platform: on fast panels the FPS/target quantizers widen
// to span the refresh rate. Use it to seed agents that will train via
// Run/RunScenario with RunOptions.Agent.
func AgentConfigFor(platformName string) (AgentConfig, error) {
	p, err := platform.Get(platformName)
	if err != nil {
		return AgentConfig{}, fmt.Errorf("nextdvfs: %w (see Platforms())", err)
	}
	return exp.DefaultAgentConfigFor(p), nil
}

// NewFleet builds a federated-training fleet of n fresh devices with
// the paper's cloud cost model.
func NewFleet(n int, cfg AgentConfig) *Fleet {
	devices := make([]*core.Agent, n)
	for i := range devices {
		c := cfg
		c.Seed = cfg.Seed + int64(i+1)*7919
		devices[i] = core.NewAgent(c)
	}
	return &Fleet{Devices: devices, Trainer: cloud.DefaultTrainerConfig()}
}

// FleetServeOptions configures ServeFleet.
type FleetServeOptions struct {
	// Addr is the TCP listen address (default "127.0.0.1:8077";
	// ":0" picks an ephemeral port — read it back from URL()).
	Addr string
	// SnapshotDir, when set, persists every merged policy to disk after
	// each merge round and warm-starts the server from the same
	// directory on the next launch.
	SnapshotDir string
	// Rollout enables the policy lifecycle subsystem: every merge
	// becomes a versioned immutable artifact, new policies ship through
	// a staged canary rollout (1% → 10% → 100% of devices), and the
	// server automatically rolls back candidates whose canary cohort
	// regresses on reported QoS or energy. Zero value = paper defaults.
	Rollout *RolloutConfig
	// MaxDevicesPerKey bounds how many device tables one policy retains
	// (0 → 4096). Raise it on a root that absorbs federated uploads from
	// aggregators fronting more devices than that.
	MaxDevicesPerKey int
}

// RolloutConfig tunes the staged-rollout lifecycle (stage ramp, minimum
// canary cohort, QoS/energy rollback guards, version retention). The
// zero value selects the defaults documented on the fields.
type RolloutConfig = rollout.Config

// FleetServer is a running fleet policy server (Section IV-C as a
// network service): devices check in, upload locally trained Q-tables,
// and download federated-merged policies over HTTP/JSON.
type FleetServer struct {
	inner *fleetd.Server
	http  *http.Server
	ln    net.Listener
}

// ServeFleet starts a fleet policy server listening on opts.Addr and
// returns immediately; the server runs until Close.
func ServeFleet(opts FleetServeOptions) (*FleetServer, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:8077"
	}
	inner, err := fleetd.NewServer(fleetd.Config{
		SnapshotDir:      opts.SnapshotDir,
		Rollout:          opts.Rollout,
		MaxDevicesPerKey: opts.MaxDevicesPerKey,
	})
	if err != nil {
		return nil, fmt.Errorf("nextdvfs: %w", err)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("nextdvfs: %w", err)
	}
	hs := &http.Server{Handler: inner.Handler()}
	go hs.Serve(ln)
	return &FleetServer{inner: inner, http: hs, ln: ln}, nil
}

// URL returns the server's base URL (http://host:port).
func (s *FleetServer) URL() string { return "http://" + s.ln.Addr().String() }

// Addr returns the bound listen address.
func (s *FleetServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight request handling.
func (s *FleetServer) Close() error { return s.http.Close() }

// NewFleetClient returns a client for a fleet policy server at baseURL.
func NewFleetClient(baseURL string) *FleetClient { return fleetd.NewClient(baseURL) }

// AggregatorOptions configures ServeAggregator — one edge node of the
// two-tier fleet topology.
type AggregatorOptions struct {
	// Addr is the TCP listen address (default "127.0.0.1:8078";
	// ":0" picks an ephemeral port — read it back from URL()).
	Addr string
	// ID names the aggregator in upstream federation pushes and its own
	// health/metrics pages (default "edge").
	ID string
	// Root is the root fleet server's base URL. Empty runs the edge
	// standalone: devices get locally merged policies and nothing
	// federates upward.
	Root string
	// QueueLimit bounds the upward queue — distinct (policy, device)
	// pairs awaiting federation (0 → 4096). A full queue answers device
	// uploads 429 with Retry-After: explicit backpressure.
	QueueLimit int
	// FlushEvery is the background federation cadence (0 → 500 ms;
	// negative disables the flusher — epochs must drain via POST
	// /v1/flush or Flush).
	FlushEvery time.Duration
}

// AggregatorServer is a running edge aggregator: devices check in,
// upload tables and pull policies against it exactly as they would
// against the root, while it merges locally and federates the raw
// device tables upward in batches.
type AggregatorServer struct {
	inner *aggregator.Server
	http  *http.Server
	ln    net.Listener
}

// ServeAggregator starts an edge aggregator listening on opts.Addr and
// returns immediately; the server (and its background flusher, when
// enabled) runs until Close.
func ServeAggregator(opts AggregatorOptions) (*AggregatorServer, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:8078"
	}
	inner, err := aggregator.New(aggregator.Config{
		ID:         opts.ID,
		Root:       opts.Root,
		QueueLimit: opts.QueueLimit,
		FlushEvery: opts.FlushEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("nextdvfs: %w", err)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("nextdvfs: %w", err)
	}
	inner.Start()
	hs := &http.Server{Handler: inner.Handler()}
	go hs.Serve(ln)
	return &AggregatorServer{inner: inner, http: hs, ln: ln}, nil
}

// URL returns the aggregator's base URL (http://host:port).
func (s *AggregatorServer) URL() string { return "http://" + s.ln.Addr().String() }

// Addr returns the bound listen address.
func (s *AggregatorServer) Addr() string { return s.ln.Addr().String() }

// Pending reports how many device tables await upward federation.
func (s *AggregatorServer) Pending() int { return s.inner.Pending() }

// Flush synchronously federates every queued device table to the root
// and returns how many the root accepted.
func (s *AggregatorServer) Flush() (int, error) { return s.inner.Flush() }

// Close stops the background flusher and the listener. Queued uploads
// are not flushed — call Flush first for a clean drain.
func (s *AggregatorServer) Close() error {
	s.inner.Close()
	return s.http.Close()
}

// BenchFleet spins up an in-process fleet policy server on an ephemeral
// port, drives it with a simulated device fleet (training through the
// sim engine, then check-in → upload → merge → policy pull per device)
// and reports the run — the serving benchmark behind
// `nextbench -fleet N`.
func BenchFleet(opts FleetSimOptions) (FleetSimReport, error) {
	serve := FleetServeOptions{Addr: "127.0.0.1:0"}
	if opts.Rollout != nil {
		serve.Rollout = &RolloutConfig{}
	}
	if opts.Devices > 4096 {
		// The root must retain every device's table for the federated
		// join, whether uploads arrive directly or through aggregators.
		serve.MaxDevicesPerKey = opts.Devices + 1
	}
	srv, err := ServeFleet(serve)
	if err != nil {
		return FleetSimReport{}, err
	}
	defer srv.Close()
	report, err := fleetsim.Run(srv.URL(), opts)
	if err != nil {
		return report, fmt.Errorf("nextdvfs: %w", err)
	}
	return report, nil
}

// Controller is the interface a custom management policy implements to
// plug into Run via sim configuration (advanced use; see internal/ctrl
// for the contract the Next agent itself satisfies).
type Controller = ctrl.Controller

// Capacity-planning workbench types (see internal/plan and
// cmd/nextplan): a Plan declares an SLO and a configuration grid,
// RunPlan sweeps the grid into an append-only JSONL result file, and
// AnalyzePlan judges every cell against the SLO.
type (
	// Plan is one declarative capacity-planning experiment.
	Plan = plan.Plan
	// PlanSLO is the service-level objective cells are judged against.
	PlanSLO = plan.SLO
	// PlanGrid declares the swept configuration axes.
	PlanGrid = plan.Grid
	// PlanRow is one cell's result row.
	PlanRow = plan.Row
	// PlanRunOptions tunes a sweep (parallelism, lockstep, fresh).
	PlanRunOptions = plan.RunOptions
	// PlanRunReport summarizes one sweep invocation.
	PlanRunReport = plan.RunReport
	// PlanAnalysis is the analyze stage's verdict.
	PlanAnalysis = plan.Analysis
)

// LoadPlan reads and validates a plan file.
func LoadPlan(path string) (*Plan, error) { return plan.Load(path) }

// RunPlan sweeps the plan's grid, appending one result row per cell to
// resultsPath. Completed cells (matched by config hash) are skipped,
// so an interrupted sweep resumes where it stopped and converges to
// the same bytes an uninterrupted sweep produces.
func RunPlan(p *Plan, resultsPath string, opts PlanRunOptions) (PlanRunReport, error) {
	return plan.Run(p, resultsPath, opts)
}

// AnalyzePlan re-reads a sweep's result rows and evaluates every grid
// cell against the plan's SLO: pass/fail per cell, the cheapest
// passing configuration (energy-first, QoS tiebreak) and per-axis
// sensitivity.
func AnalyzePlan(p *Plan, resultsPath string) (*PlanAnalysis, error) {
	rows, err := plan.ReadRows(resultsPath)
	if err != nil {
		return nil, err
	}
	return plan.Analyze(p, rows), nil
}
