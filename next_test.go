package nextdvfs

import (
	"sort"
	"testing"
)

func TestAppsLisTSevenPresets(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("apps = %d, want 7", len(apps))
	}
}

func TestRunDefaultsToSchedutil(t *testing.T) {
	res, err := Run(RunOptions{App: "home", Seconds: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "schedutil" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
	if res.DurationS != 20 {
		t.Fatalf("duration = %g", res.DurationS)
	}
}

func TestRunUnknownAppAndScheme(t *testing.T) {
	if _, err := Run(RunOptions{App: "tiktok"}); err == nil {
		t.Fatal("unknown app must error")
	}
	if _, err := Run(RunOptions{App: "home", Scheme: "magic"}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestRunFig1Session(t *testing.T) {
	res, err := Run(RunOptions{Fig1Session: true, Seed: 4, RecordEverySec: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationS != 280 {
		t.Fatalf("duration = %g, want 280", res.DurationS)
	}
	if len(res.Samples) < 80 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
}

func TestRunSchemesAreOrdered(t *testing.T) {
	// performance >= schedutil >= powersave on the same heavy session.
	var p [3]float64
	for i, scheme := range []Scheme{SchemePerformance, SchemeSchedutil, SchemePowersave} {
		res, err := Run(RunOptions{App: "pubgmobile", Seconds: 30, Seed: 5, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		p[i] = res.AvgPowerW
	}
	if !(p[0] > p[1] && p[1] > p[2]) {
		t.Fatalf("power ordering violated: perf=%.2f sched=%.2f save=%.2f", p[0], p[1], p[2])
	}
}

func TestRunNextWithFreshAgent(t *testing.T) {
	res, err := Run(RunOptions{App: "spotify", Seconds: 30, Seed: 6, Scheme: SchemeNext})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "next" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}

func TestRunIntQoSOnGame(t *testing.T) {
	res, err := Run(RunOptions{App: "lineage2revolution", Seconds: 30, Seed: 7, Scheme: SchemeIntQoS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "intqospm" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}

func TestTrainAgentWorkflow(t *testing.T) {
	agent, stats, err := TrainAgent("youtube", TrainOptions{Sessions: 2, SessionSeconds: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 2 || agent.TableFor("youtube") == nil {
		t.Fatalf("training incomplete: %+v", stats)
	}
	if _, _, err := TrainAgent("nope", TrainOptions{}); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestTrainAgentOnAccumulatesApps(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 9
	agent := NewAgent(cfg)
	for _, app := range []string{"home", "chrome"} {
		if _, err := TrainAgentOn(agent, app, TrainOptions{Sessions: 1, SessionSeconds: 20, Seed: 9}); err != nil {
			t.Fatal(err)
		}
	}
	if len(agent.Apps()) != 2 {
		t.Fatalf("agent apps = %v", agent.Apps())
	}
	if _, err := TrainAgentOn(agent, "nope", TrainOptions{}); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestNewFleetDistinctSeeds(t *testing.T) {
	fleet := NewFleet(3, DefaultAgentConfig())
	if len(fleet.Devices) != 3 {
		t.Fatalf("devices = %d", len(fleet.Devices))
	}
	if fleet.Trainer.Speedup <= 1 {
		t.Fatal("fleet should use the cloud trainer config")
	}
}

func TestStoreRoundTripThroughFacade(t *testing.T) {
	dir := t.TempDir()
	agent, _, err := TrainAgent("home", TrainOptions{Sessions: 1, SessionSeconds: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := Store{Dir: dir}
	if err := st.SaveAgent(agent); err != nil {
		t.Fatal(err)
	}
	reloaded := NewAgent(DefaultAgentConfig())
	if err := st.LoadAgent(reloaded); err != nil {
		t.Fatal(err)
	}
	if reloaded.TableFor("home") == nil {
		t.Fatal("reload lost the table")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(RunOptions{App: "facebook", Seconds: 25, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunOptions{App: "facebook", Seconds: 25, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerW != b.AvgPowerW || a.AvgFPS != b.AvgFPS {
		t.Fatal("identical seeds diverged through the facade")
	}
}

func TestPlatformsRegistry(t *testing.T) {
	plats := Platforms()
	if len(plats) < 6 {
		t.Fatalf("platforms = %v", plats)
	}
	infos := PlatformInfos()
	if len(infos) != len(plats) {
		t.Fatalf("infos = %d, platforms = %d", len(infos), len(plats))
	}
	for _, info := range infos {
		if info.Name == "" || info.Description == "" || info.RefreshHz <= 0 {
			t.Fatalf("incomplete info %+v", info)
		}
	}
}

func TestRunOnAlternatePlatforms(t *testing.T) {
	note9, err := Run(RunOptions{App: "pubgmobile", Seconds: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := Run(RunOptions{App: "pubgmobile", Platform: "sd855", Seconds: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if note9.AvgPowerW == sd.AvgPowerW {
		t.Fatal("different platforms produced identical power")
	}
	if _, err := Run(RunOptions{App: "home", Platform: "nokia3310"}); err == nil {
		t.Fatal("unknown platform must error")
	}
	if _, _, err := TrainAgent("home", TrainOptions{Sessions: 1, SessionSeconds: 10, Platform: "nokia3310"}); err == nil {
		t.Fatal("unknown platform must error in TrainAgent")
	}
}

func TestRunNextOnHighRefreshPlatform(t *testing.T) {
	res, err := Run(RunOptions{App: "lineage2revolution", Platform: "sd855-120hz", Seconds: 20, Seed: 4, Scheme: SchemeNext})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "next" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}

func TestRunThermalCapScheme(t *testing.T) {
	res, err := Run(RunOptions{App: "lineage2revolution", Seconds: 30, Seed: 14, Scheme: SchemeThermalCap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "thermalcap" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}

func TestScenariosListedAndDescribed(t *testing.T) {
	names := Scenarios()
	if len(names) < 8 {
		t.Fatalf("scenario library has %d entries, want ≥ 8", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Scenarios() not sorted: %v", names)
	}
	infos := ScenarioInfos()
	if len(infos) != len(names) {
		t.Fatalf("%d infos for %d scenarios", len(infos), len(names))
	}
	for _, info := range infos {
		if info.Description == "" || info.Seconds <= 0 || len(info.Apps) == 0 {
			t.Fatalf("incomplete scenario info: %+v", info)
		}
	}
}

func TestRunScenario(t *testing.T) {
	res, err := RunScenario("commute", RunOptions{Seconds: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationS < 29 || res.DurationS > 31 {
		t.Fatalf("scaled commute ran %.1f s, want ≈30", res.DurationS)
	}
	// Same options, same bytes — the repo-wide determinism contract.
	again, err := RunScenario("commute", RunOptions{Seconds: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW != again.AvgPowerW || res.EnergyJ != again.EnergyJ {
		t.Fatal("identical scenario runs diverged")
	}
	// The thermal-soak scenario's 35 °C car must show up in the results.
	soak, err := RunScenario("thermal-soak", RunOptions{Seconds: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if soak.PeakTempDevC < res.PeakTempDevC {
		t.Fatalf("thermal-soak device peak %.1f °C below commute's %.1f °C", soak.PeakTempDevC, res.PeakTempDevC)
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario("nope", RunOptions{}); err == nil {
		t.Fatal("unknown scenario should error")
	}
	if _, err := Run(RunOptions{Scenario: "commute", App: "spotify"}); err == nil {
		t.Fatal("Scenario+App should error")
	}
	if _, err := Run(RunOptions{Scenario: "commute", Fig1Session: true}); err == nil {
		t.Fatal("Scenario+Fig1Session should error")
	}
}

func TestRunScenarioUnderNextScheme(t *testing.T) {
	res, err := RunScenario("bursty-messaging", RunOptions{
		Seconds: 30, Seed: 9, Scheme: SchemeNext,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "next" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
}
